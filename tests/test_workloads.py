"""Tests of the traffic workload subsystem (:mod:`repro.workloads`).

Four layers are covered: the arrival models themselves (draw-order
determinism, byte-identity of the default model with the historic
``PoissonWorkload``, statistical shape of the non-default models), the
declarative parameters, the engine threading (spec override, grid axis,
backend identity) and the CLI flags.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import units
from repro.cli import main as cli_main
from repro.dtn.packet import DEFAULT_TRAFFIC_CLASS, PacketFactory
from repro.dtn.results import SimulationResult
from repro.dtn.workload import PoissonWorkload
from repro.engine import ExperimentEngine, ScenarioGrid, ScenarioSpec
from repro.engine import worker as cell_worker
from repro.exceptions import ConfigurationError
from repro.experiments.config import (
    ProtocolSpec,
    SyntheticExperimentConfig,
    TraceExperimentConfig,
)
from repro.workloads import (
    DiurnalProfile,
    HotspotPopularity,
    MMPPBursty,
    PoissonArrivals,
    TrafficClass,
    UniformCBR,
    UniformPopularity,
    WORKLOAD_MODEL_NAMES,
    WorkloadParameters,
    ZipfPopularity,
    build_traffic_model,
)


def _canonical(payload) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _build(name: str, params: WorkloadParameters = WorkloadParameters(), **kwargs):
    defaults = dict(packets_per_hour=120.0, packet_size=512, seed=5)
    defaults.update(kwargs)
    return build_traffic_model(params, model=name, **defaults)


# ----------------------------------------------------------------------
# The default model: byte-identity with the historic generator
# ----------------------------------------------------------------------
class TestUniformCBRIdentity:
    @pytest.mark.parametrize("seed", [0, 7, 7007])
    @pytest.mark.parametrize("rate,size,deadline", [(60.0, 1024, None), (13.5, 256, 40.0)])
    def test_matches_poisson_workload_exactly(self, seed, rate, size, deadline):
        """The pre-subsystem generator and UniformCBR draw identically."""
        legacy = PoissonWorkload(
            packets_per_hour=rate, packet_size=size, deadline=deadline, seed=seed
        ).generate(list(range(7)), 900.0)
        modern = UniformCBR(
            packets_per_hour=rate, packet_size=size, deadline=deadline, seed=seed
        ).generate(list(range(7)), 900.0)
        assert modern == legacy

    def test_matches_with_start_time_and_shared_factory(self):
        factory_a, factory_b = PacketFactory(100), PacketFactory(100)
        legacy = PoissonWorkload(packets_per_hour=40.0, seed=3, factory=factory_a)
        modern = UniformCBR(packets_per_hour=40.0, seed=3, factory=factory_b)
        assert modern.generate(range(5), 600.0, start_time=50.0) == legacy.generate(
            range(5), 600.0, start_time=50.0
        )

    def test_registry_default_is_uniform(self):
        model = build_traffic_model(WorkloadParameters(), 60.0, 1024, seed=1)
        assert isinstance(model, UniformCBR)
        assert WORKLOAD_MODEL_NAMES[0] == "uniform"


# ----------------------------------------------------------------------
# Model behaviour
# ----------------------------------------------------------------------
class TestModelBehaviour:
    @pytest.mark.parametrize("name", WORKLOAD_MODEL_NAMES)
    def test_same_seed_same_packets(self, name):
        first = _build(name).generate(range(6), 600.0)
        second = _build(name).generate(range(6), 600.0)
        assert first == second

    @pytest.mark.parametrize("name", WORKLOAD_MODEL_NAMES)
    def test_packets_inside_horizon_and_valid(self, name):
        packets = _build(name).generate(range(6), 600.0, start_time=25.0)
        for packet in packets:
            assert 25.0 <= packet.creation_time < 625.0
            assert packet.source != packet.destination
            assert 0 <= packet.source < 6 and 0 <= packet.destination < 6

    def test_mean_rate_preserved_across_models(self):
        """Bursty/diurnal reshape arrivals in time without changing load.

        The diurnal cell spans one full profile period — the sinusoid
        only averages to the mean rate over whole cycles.
        """
        nodes, duration = list(range(8)), 4 * units.HOUR
        params = WorkloadParameters(diurnal_period=duration)
        counts = {
            name: len(
                _build(name, params, packets_per_hour=6.0, seed=23).generate(nodes, duration)
            )
            for name in ("uniform", "poisson", "bursty", "diurnal")
        }
        expected = 6.0 / units.HOUR * duration * len(nodes) * (len(nodes) - 1)
        for name, count in counts.items():
            assert count == pytest.approx(expected, rel=0.2), (name, count, expected)

    def test_bursty_concentrates_interarrivals(self):
        """MMPP bursts squeeze many gaps below the uniform model's mean."""
        nodes, duration = list(range(6)), 2 * units.HOUR

        def small_gap_fraction(name):
            packets = _build(name, packets_per_hour=12.0, seed=9).generate(nodes, duration)
            times = np.array([p.creation_time for p in packets])
            gaps = np.diff(times)
            return float(np.mean(gaps < np.mean(gaps) * 0.1))

        assert small_gap_fraction("bursty") > small_gap_fraction("uniform")

    def test_zipf_skews_destinations(self):
        packets = _build(
            "zipf", WorkloadParameters(zipf_alpha=1.5), packets_per_hour=240.0
        ).generate(range(10), units.HOUR)
        counts = np.bincount([p.destination for p in packets], minlength=10)
        assert counts[0] > 2 * counts[9]

    def test_hotspot_concentrates_destinations(self):
        params = WorkloadParameters(hotspot_fraction=0.2, hotspot_weight=0.8)
        packets = _build("hotspot", params, packets_per_hour=240.0).generate(
            range(10), units.HOUR
        )
        hot = sum(1 for p in packets if p.destination < 2)
        assert hot / len(packets) == pytest.approx(0.8, abs=0.1)

    def test_model_validation(self):
        with pytest.raises(ValueError):
            UniformCBR(packets_per_hour=0)
        with pytest.raises(ValueError):
            UniformCBR(packets_per_hour=5).generate([0], 10.0)
        with pytest.raises(ValueError):
            UniformCBR(packets_per_hour=5).generate([0, 1], 0.0)
        with pytest.raises(ValueError):
            MMPPBursty(burstiness=1.0, packets_per_hour=5)
        with pytest.raises(KeyError):
            build_traffic_model(WorkloadParameters(), 5.0, 1024, model="nope")


# ----------------------------------------------------------------------
# Hypothesis properties
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(
    name=st.sampled_from(WORKLOAD_MODEL_NAMES),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    rate=st.floats(min_value=5.0, max_value=400.0),
    num_nodes=st.integers(min_value=2, max_value=12),
)
def test_arrivals_are_time_sorted(name, seed, rate, num_nodes):
    """Every model returns packets sorted by creation time."""
    packets = build_traffic_model(
        WorkloadParameters(), packets_per_hour=rate, packet_size=1024, seed=seed, model=name
    ).generate(list(range(num_nodes)), 600.0)
    times = [p.creation_time for p in packets]
    assert times == sorted(times)


@settings(max_examples=25, deadline=None)
@given(
    name=st.sampled_from(WORKLOAD_MODEL_NAMES),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    weights=st.lists(
        st.floats(min_value=0.1, max_value=10.0), min_size=1, max_size=4
    ),
)
def test_per_class_counts_conserve_totals(name, seed, weights):
    """Per-class metric counts sum to the run's packet totals."""
    classes = tuple(
        TrafficClass(name=f"class{i}", weight=w, priority=i)
        for i, w in enumerate(weights)
    )
    params = WorkloadParameters(classes=classes)
    packets = build_traffic_model(
        params, packets_per_hour=120.0, packet_size=512, seed=seed, model=name
    ).generate(list(range(5)), 400.0)
    result = SimulationResult(protocol_name="none", duration=400.0)
    from repro.dtn.packet import PacketRecord

    for packet in packets:
        result.records[packet.packet_id] = PacketRecord(packet=packet)
    summary = result.per_class_summary()
    assert sum(row["packets"] for row in summary.values()) == result.num_packets
    assert sum(row["delivered"] for row in summary.values()) == result.num_delivered
    assert set(summary) == {p.traffic_class for p in packets}


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_class_mix_never_perturbs_arrival_times(seed):
    """Adding classes retags packets without moving a single arrival."""
    plain = UniformCBR(packets_per_hour=60.0, seed=seed).generate(range(5), 500.0)
    mixed = UniformCBR(
        packets_per_hour=60.0,
        seed=seed,
        classes=(TrafficClass("a", 1.0), TrafficClass("b", 2.0)),
    ).generate(range(5), 500.0)
    assert [(p.source, p.destination, p.creation_time) for p in plain] == [
        (p.source, p.destination, p.creation_time) for p in mixed
    ]


# ----------------------------------------------------------------------
# Popularity and profile pieces
# ----------------------------------------------------------------------
class TestPopularityAndProfile:
    def test_sample_never_returns_source(self):
        rng = np.random.default_rng(0)
        nodes = list(range(6))
        for popularity in (UniformPopularity(), ZipfPopularity(1.0), HotspotPopularity()):
            for source_index in range(len(nodes)):
                for _ in range(50):
                    assert popularity.sample(rng, nodes, source_index) != nodes[source_index]

    def test_zipf_weights_decrease(self):
        weights = ZipfPopularity(0.9).weights(list(range(8)))
        assert all(a > b for a, b in zip(weights, weights[1:]))

    def test_hotspot_weights_mass(self):
        weights = HotspotPopularity(fraction=0.25, weight=0.6).weights(list(range(8)))
        assert weights[:2].sum() == pytest.approx(0.6)
        assert weights.sum() == pytest.approx(1.0)

    def test_diurnal_profile_shape(self):
        profile = DiurnalProfile(amplitude=0.5, period=100.0)
        samples = [profile.multiplier(t) for t in np.linspace(0, 100.0, 1000, endpoint=False)]
        assert np.mean(samples) == pytest.approx(1.0, abs=1e-3)
        assert max(samples) <= profile.peak + 1e-9
        assert all(0.0 < profile.acceptance(t) <= 1.0 for t in range(100))

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfPopularity(-0.1)
        with pytest.raises(ValueError):
            HotspotPopularity(fraction=0.0)
        with pytest.raises(ValueError):
            DiurnalProfile(amplitude=1.0)


# ----------------------------------------------------------------------
# Parameters
# ----------------------------------------------------------------------
class TestWorkloadParameters:
    def test_roundtrip(self):
        params = WorkloadParameters(
            model="bursty",
            burstiness=6.0,
            classes=(TrafficClass("news", 2.0, deadline=30.0, priority=1),),
        )
        restored = WorkloadParameters.from_dict(json.loads(json.dumps(params.to_dict())))
        assert restored == params

    def test_default_is_default(self):
        assert WorkloadParameters().is_default()
        assert not WorkloadParameters(model="poisson").is_default()

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadParameters(burstiness=1.0)
        with pytest.raises(ValueError):
            WorkloadParameters(diurnal_amplitude=1.0)
        with pytest.raises(ValueError):
            WorkloadParameters(classes=(TrafficClass("a"), TrafficClass("a")))
        with pytest.raises(ValueError):
            TrafficClass("", 1.0)
        with pytest.raises(ValueError):
            TrafficClass("a", weight=0.0)

    def test_config_rejects_unknown_model(self):
        with pytest.raises(ConfigurationError):
            SyntheticExperimentConfig.ci_scale().with_workload(
                WorkloadParameters(model="fractal")
            )

    def test_config_roundtrip_with_workload(self):
        config = TraceExperimentConfig.ci_scale().with_workload(
            WorkloadParameters(model="zipf", zipf_alpha=1.1)
        )
        restored = TraceExperimentConfig.from_dict(
            json.loads(json.dumps(config.to_dict()))
        )
        assert restored.workload == config.workload


# ----------------------------------------------------------------------
# Engine threading: spec override, grid axis, backend identity
# ----------------------------------------------------------------------
def _synth_config() -> SyntheticExperimentConfig:
    return SyntheticExperimentConfig(
        num_nodes=8,
        mean_inter_meeting=70.0,
        transfer_opportunity=100 * units.KB,
        duration=4 * units.MINUTE,
        buffer_capacity=40 * units.KB,
        deadline=25.0,
        packet_interval=50.0,
        mobility="exponential",
        num_runs=1,
        seed=11,
    )


class TestEngineThreading:
    def test_spec_rejects_unknown_workload(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec.for_cell(
                config=_synth_config(),
                protocol=ProtocolSpec(label="rapid", registry_name="rapid"),
                load=6.0,
                run_index=0,
                workload="fractal",
            )

    def test_from_dict_rejects_unknown_fields(self):
        spec = ScenarioSpec.for_cell(
            config=_synth_config(),
            protocol=ProtocolSpec(label="rapid", registry_name="rapid"),
            load=6.0,
            run_index=0,
        )
        data = {**spec.to_dict(), "workloads": "poisson"}
        with pytest.raises(ConfigurationError, match="workloads"):
            ScenarioSpec.from_dict(data)

    def test_resolved_workload(self):
        config = _synth_config()
        protocol = ProtocolSpec(label="rapid", registry_name="rapid")
        default = ScenarioSpec.for_cell(config=config, protocol=protocol, load=6.0, run_index=0)
        assert default.resolved_workload() == "uniform"
        override = ScenarioSpec.for_cell(
            config=config, protocol=protocol, load=6.0, run_index=0, workload="bursty"
        )
        assert override.resolved_workload() == "bursty"
        configured = ScenarioSpec.for_cell(
            config=config.with_workload(WorkloadParameters(model="zipf")),
            protocol=protocol,
            load=6.0,
            run_index=0,
        )
        assert configured.resolved_workload() == "zipf"

    def test_grid_workload_axis(self):
        grid = ScenarioGrid(
            config=_synth_config(),
            protocols=[ProtocolSpec(label="rapid", registry_name="rapid")],
            loads=(6.0,),
            workloads=("uniform", "poisson", "bursty"),
        )
        cells = grid.cells()
        assert len(grid) == len(cells) == 3
        assert [cell.workload for cell in cells] == ["uniform", "poisson", "bursty"]
        with pytest.raises(ConfigurationError):
            ScenarioGrid(
                config=_synth_config(),
                protocols=[ProtocolSpec(label="rapid", registry_name="rapid")],
                loads=(6.0,),
                workloads=(),
            )

    def test_worker_override_changes_packets_and_memoizes_separately(self):
        config = _synth_config()
        cell_worker.clear_input_caches()
        default = cell_worker.synthetic_workload(config, 0, 6.0)
        poisson = cell_worker.synthetic_workload(config, 0, 6.0, "poisson")
        again = cell_worker.synthetic_workload(config, 0, 6.0)
        assert default is again  # memoized per resolved model
        assert default != poisson

    def test_trace_worker_override(self):
        config = TraceExperimentConfig.ci_scale(seed=7, num_days=1)
        cell_worker.clear_input_caches()
        default = cell_worker.trace_workload(config, 0, 4.0)
        bursty = cell_worker.trace_workload(config, 0, 4.0, "bursty")
        assert default != bursty


class TestWorkloadGoldenIdentity:
    """The workload axis must not perturb default cells, and swept cells
    must be byte-identical across every engine backend."""

    PROTOCOLS = ("rapid", "maxprop", "prophet")

    def _grid(self, workloads=None):
        return ScenarioGrid(
            config=_synth_config(),
            protocols=[
                ProtocolSpec(label=name, registry_name=name) for name in self.PROTOCOLS
            ],
            loads=(6.0,),
            workloads=workloads,
        )

    def test_explicit_uniform_matches_default(self):
        """Spelling the default out must not change a single byte."""
        with ExperimentEngine(workers=1) as engine:
            default = [r.to_dict() for r in engine.run_grid(self._grid())]
            explicit = [r.to_dict() for r in engine.run_grid(self._grid(("uniform",)))]
        assert _canonical(default) == _canonical(explicit)

    def test_workload_sweep_identical_across_backends(self, tmp_path):
        """poisson/bursty/zipf cells agree byte for byte across the
        serial, workers=4 and cold/warm-cache backends."""
        grid = self._grid(("poisson", "bursty", "zipf"))
        with ExperimentEngine(workers=1) as engine:
            serial = _canonical([r.to_dict() for r in engine.run_grid(grid)])
        with ExperimentEngine(workers=4) as engine:
            parallel = _canonical([r.to_dict() for r in engine.run_grid(grid)])
        cache_dir = tmp_path / "cache"
        with ExperimentEngine(workers=1, cache_dir=cache_dir) as engine:
            cold = _canonical([r.to_dict() for r in engine.run_grid(grid)])
        with ExperimentEngine(workers=1, cache_dir=cache_dir) as engine:
            warm = _canonical([r.to_dict() for r in engine.run_grid(grid)])
            assert engine.stats.cache_hits == len(grid)
        assert parallel == serial
        assert cold == serial
        assert warm == serial


# ----------------------------------------------------------------------
# CLI flags
# ----------------------------------------------------------------------
class TestWorkloadCLI:
    def test_quicksim_workload_flag(self, capsys):
        code = cli_main(
            [
                "quicksim", "--protocol", "random", "--nodes", "5",
                "--duration", "120", "--mean-meeting", "30",
                "--workload", "bursty", "--burstiness", "5",
            ]
        )
        assert code == 0
        assert "delivery_rate" in capsys.readouterr().out

    def test_quicksim_contact_model_parity(self, capsys):
        code = cli_main(
            [
                "quicksim", "--protocol", "random", "--nodes", "5",
                "--duration", "120", "--mean-meeting", "30",
                "--contact-model", "durational",
            ]
        )
        assert code == 0
        assert "delivery_rate" in capsys.readouterr().out

    def test_sweep_workload_axis_labels(self, capsys):
        code = cli_main(
            [
                "sweep", "--family", "synthetic", "--protocols", "random",
                "--loads", "4", "--workload", "poisson,zipf",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "random [poisson]" in output and "random [zipf]" in output

    def test_sweep_rejects_unknown_workload(self, capsys):
        code = cli_main(
            [
                "sweep", "--family", "synthetic", "--protocols", "random",
                "--loads", "4", "--workload", "fractal",
            ]
        )
        assert code == 2
        assert "unknown workload model" in capsys.readouterr().err

    def test_burstiness_requires_bursty_model(self, capsys):
        code = cli_main(
            [
                "quicksim", "--protocol", "random", "--nodes", "4",
                "--duration", "60", "--burstiness", "3",
            ]
        )
        assert code == 2
        assert "--burstiness" in capsys.readouterr().err

    def test_zipf_alpha_requires_zipf_model(self, capsys):
        code = cli_main(
            [
                "sweep", "--family", "synthetic", "--protocols", "random",
                "--loads", "4", "--zipf-alpha", "0.9",
            ]
        )
        assert code == 2
        assert "--zipf-alpha" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Packet tagging
# ----------------------------------------------------------------------
class TestPacketClassTagging:
    def test_default_packets_serialize_without_class_keys(self):
        factory = PacketFactory()
        packet = factory.create(source=0, destination=1)
        assert packet.traffic_class == DEFAULT_TRAFFIC_CLASS
        assert packet.priority == 0
        payload = SimulationResult._packet_payload(packet)
        assert "traffic_class" not in payload and "priority" not in payload

    def test_classed_packets_roundtrip(self):
        factory = PacketFactory()
        packet = factory.create(
            source=0, destination=1, traffic_class="news", priority=3
        )
        payload = SimulationResult._packet_payload(packet)
        assert payload["traffic_class"] == "news" and payload["priority"] == 3
        result = SimulationResult(protocol_name="x", duration=1.0)
        from repro.dtn.packet import PacketRecord

        result.records[packet.packet_id] = PacketRecord(packet=packet)
        restored = SimulationResult.from_dict(json.loads(json.dumps(result.to_dict())))
        rebuilt = restored.records[packet.packet_id].packet
        assert rebuilt.traffic_class == "news" and rebuilt.priority == 3
        assert _canonical(restored.to_dict()) == _canonical(result.to_dict())

    def test_class_sizes_and_deadlines_apply(self):
        params = WorkloadParameters(
            classes=(
                TrafficClass("bulk", 1.0, size=4096),
                TrafficClass("news", 1.0, deadline=20.0),
            )
        )
        packets = build_traffic_model(
            params, packets_per_hour=200.0, packet_size=512, seed=2
        ).generate(range(4), 300.0)
        by_class = {p.traffic_class for p in packets}
        assert by_class == {"bulk", "news"}
        for packet in packets:
            if packet.traffic_class == "bulk":
                assert packet.size == 4096 and packet.deadline is None
            else:
                assert packet.size == 512 and packet.deadline == 20.0
