"""Tests for the profiling subsystem and its result-serialization contract."""

from __future__ import annotations

import os

from repro.dtn.results import SimulationResult
from repro.dtn.simulator import run_simulation
from repro.dtn.workload import PoissonWorkload
from repro.mobility.exponential import ExponentialMobility
from repro.profiling import ENV_PROFILE, Profiler, profiling_requested, slow_reference_mode
from repro.routing.registry import create_factory


def _small_inputs():
    mobility = ExponentialMobility(num_nodes=5, mean_inter_meeting=30.0, seed=1)
    schedule = mobility.generate(300.0)
    workload = PoissonWorkload(packets_per_hour=60.0, seed=2)
    packets = workload.generate(list(range(5)), 300.0)
    return schedule, packets


class TestProfiler:
    def test_phases_accumulate_and_count(self):
        profiler = Profiler()
        for _ in range(3):
            with profiler.phase("work"):
                pass
        profiler.count("items", 5)
        flat = profiler.timings()
        assert flat["calls_work"] == 3.0
        assert flat["calls_items"] == 5.0
        assert flat["phase_work_s"] >= 0.0
        assert "work" in profiler.report()

    def test_same_name_phases_nest_correctly(self):
        import time as time_module

        profiler = Profiler()
        with profiler.phase("outer"):
            with profiler.phase("outer"):
                time_module.sleep(0.01)
        flat = profiler.timings()
        assert flat["calls_outer"] == 2.0
        # The outer span covers the inner one; with a shared timer object
        # the outer charge would have started at the inner __enter__.
        assert flat["phase_outer_s"] >= 0.02

    def test_env_switches(self, monkeypatch):
        monkeypatch.delenv(ENV_PROFILE, raising=False)
        assert not profiling_requested()
        assert profiling_requested({"profile": True})
        monkeypatch.setenv(ENV_PROFILE, "1")
        assert profiling_requested()
        monkeypatch.setenv(ENV_PROFILE, "0")
        assert not profiling_requested()
        monkeypatch.delenv("REPRO_SLOW_ESTIMATES", raising=False)
        assert not slow_reference_mode()


class TestSimulationTimings:
    def test_profile_option_records_phase_timings(self):
        schedule, packets = _small_inputs()
        result = run_simulation(
            schedule, packets, create_factory("rapid"), seed=3, options={"profile": True}
        )
        assert result.timings, "profiling should record phase timings"
        assert "phase_total_s" in result.timings
        assert "phase_control_exchange_s" in result.timings
        payload = result.to_dict()
        assert payload["timings"] == result.timings
        rebuilt = SimulationResult.from_dict(payload)
        assert rebuilt.timings == result.timings

    def test_unprofiled_results_serialize_without_timings(self):
        schedule, packets = _small_inputs()
        result = run_simulation(schedule, packets, create_factory("rapid"), seed=3)
        assert result.timings == {}
        payload = result.to_dict()
        assert "timings" not in payload, (
            "unprofiled payloads must stay byte-identical to the schema as "
            "written before timings existed"
        )
        rebuilt = SimulationResult.from_dict(payload)
        assert rebuilt.timings == {}

    def test_profiling_does_not_change_simulation_output(self):
        schedule, packets = _small_inputs()
        plain = run_simulation(schedule, packets, create_factory("rapid"), seed=3)
        profiled = run_simulation(
            schedule, packets, create_factory("rapid"), seed=3, options={"profile": True}
        )
        payload = profiled.to_dict()
        payload.pop("timings", None)
        assert payload == plain.to_dict()

    def test_env_var_enables_profiling(self, monkeypatch):
        monkeypatch.setenv(ENV_PROFILE, "1")
        schedule, packets = _small_inputs()
        result = run_simulation(schedule, packets, create_factory("maxprop"), seed=3)
        assert "phase_total_s" in result.timings

    def test_result_cache_strips_timings(self, tmp_path):
        from repro.engine.cache import ResultCache
        from repro.engine.spec import ScenarioSpec
        from repro.experiments.config import ProtocolSpec, SyntheticExperimentConfig

        schedule, packets = _small_inputs()
        result = run_simulation(
            schedule, packets, create_factory("rapid"), seed=3, options={"profile": True}
        )
        assert result.timings
        spec = ScenarioSpec.for_cell(
            config=SyntheticExperimentConfig(num_runs=1, seed=3),
            protocol=ProtocolSpec(label="rapid", registry_name="rapid"),
            load=4.0,
            run_index=0,
        )
        cache = ResultCache(tmp_path / "cache")
        cache.put(spec, result)
        cached = cache.get(spec)
        # Timings describe one run on one machine, not the cell: a warm
        # cache must serve the same bytes whether or not the run that
        # filled it was profiled.
        assert cached is not None and cached.timings == {}
        assert "timings" not in cached.to_dict()
