"""Tests for the failure-resilient sweep engine.

Covers the self-healing worker pool (crash isolation, per-cell
timeouts, bounded deterministic backoff, partial results), the sweep
manifest behind ``repro-dtn sweep --resume``, the fail-fast validation
of trace/telemetry output paths, and the headline robustness claims:

* a sweep with one worker **SIGKILLed mid-cell** completes via retry
  with results byte-identical to an undisturbed run;
* a sweep interrupted and **resumed** replays completed cells from the
  result cache and prints byte-identical output;
* ``KeyboardInterrupt`` tears the pool down without orphaning workers.
"""

import json
import os
import signal
import time

import pytest

from repro import units
from repro.engine import (
    CellFailure,
    ExperimentEngine,
    Executor,
    ResultCache,
    ScenarioGrid,
    SweepManifest,
    SweepTelemetry,
)
from repro.engine.resilient import ResilientPool
from repro.engine.worker import execute_cell
from repro.exceptions import ConfigurationError
from repro.experiments.config import ProtocolSpec, SyntheticExperimentConfig
from repro.observability import JsonlSink, validate_writable
from repro.observability.telemetry import SWEEP_REPORT_VERSION


# ----------------------------------------------------------------------
# Top-level payload functions (workers fork/spawn these, so they must be
# importable — no closures).
# ----------------------------------------------------------------------
def _square(payload):
    return payload * payload


def _boom(payload):
    raise RuntimeError(f"cell {payload} exploded")


def _flaky(payload):
    """Fail (or self-SIGKILL) the first time, succeed on retry.

    ``payload`` is ``(value, marker_path, mode)``; the marker file is the
    cross-process memory that makes the first attempt misbehave and every
    later attempt succeed.
    """
    value, marker, mode = payload
    if marker is not None and not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8") as handle:
            handle.write("attempted\n")
        if mode == "raise":
            raise RuntimeError("first attempt fails")
        if mode == "sigkill":
            os.kill(os.getpid(), signal.SIGKILL)
        if mode == "hang":
            time.sleep(60.0)
    return value * value


def _simulate_payload(payload):
    """Run one real simulation cell, optionally self-SIGKILLing first.

    Returns the canonical serialized result so byte-identity across the
    disturbed and undisturbed runs is checked on the wire format itself.
    """
    seed, marker = payload
    if marker is not None and not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8") as handle:
            handle.write("attempted\n")
        os.kill(os.getpid(), signal.SIGKILL)
    from repro.dtn.simulator import run_simulation
    from repro.dtn.workload import PoissonWorkload
    from repro.mobility.exponential import ExponentialMobility
    from repro.routing.registry import create_factory

    mobility = ExponentialMobility(
        num_nodes=5, mean_inter_meeting=40.0, transfer_opportunity=50 * units.KB, seed=seed
    )
    schedule = mobility.generate(240.0)
    packets = PoissonWorkload(packets_per_hour=240.0, seed=seed + 1).generate(
        list(range(5)), 240.0
    )
    result = run_simulation(
        schedule, packets, create_factory("rapid"), buffer_capacity=20 * units.KB, seed=7
    )
    return json.dumps(result.to_dict(), sort_keys=True, separators=(",", ":"))


def _interrupting_progress(done, total):
    raise KeyboardInterrupt


# ----------------------------------------------------------------------
# The pool
# ----------------------------------------------------------------------
class TestResilientPool:
    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            ResilientPool(_square, workers=0)
        with pytest.raises(ConfigurationError):
            ResilientPool(_square, retries=-1)
        with pytest.raises(ConfigurationError):
            ResilientPool(_square, cell_timeout=0.0)
        with pytest.raises(ConfigurationError):
            ResilientPool(_square, backoff_base=-1.0)

    def test_results_keep_submission_order(self):
        pool = ResilientPool(_square, workers=3)
        results, failures = pool.run(list(range(7)))
        assert results == [n * n for n in range(7)]
        assert failures == []

    def test_empty_batch(self):
        assert ResilientPool(_square).run([]) == ([], [])

    def test_exhausted_retries_become_failures(self):
        pool = ResilientPool(_boom, workers=2, retries=1, backoff_base=0.0)
        results, failures = pool.run([10, 20], labels=["a", "b"])
        assert results == [None, None]
        assert [f.index for f in failures] == [0, 1]
        assert all(f.attempts == 2 for f in failures)
        assert all("exploded" in f.error for f in failures)
        assert failures[0].label == "a"
        assert failures[0].to_dict()["error"] == failures[0].error

    def test_exception_retried_until_success(self, tmp_path):
        marker = str(tmp_path / "raise.marker")
        pool = ResilientPool(_flaky, workers=1, retries=2, backoff_base=0.0)
        results, failures = pool.run([(6, marker, "raise"), (3, None, "raise")])
        assert results == [36, 9]
        assert failures == []

    def test_sigkilled_worker_is_replaced_and_cell_retried(self, tmp_path):
        marker = str(tmp_path / "kill.marker")
        pool = ResilientPool(_flaky, workers=2, retries=2, backoff_base=0.0)
        results, failures = pool.run(
            [(2, None, "ok"), (5, marker, "sigkill"), (4, None, "ok")]
        )
        assert results == [4, 25, 16]
        assert failures == []

    def test_sigkill_without_retries_fails_that_cell_only(self, tmp_path):
        marker = str(tmp_path / "kill-once.marker")
        pool = ResilientPool(_flaky, workers=2, retries=0, backoff_base=0.0)
        results, failures = pool.run(
            [(2, None, "ok"), (5, marker, "sigkill"), (4, None, "ok")]
        )
        assert results == [4, None, 16]
        assert [f.index for f in failures] == [1]
        assert "died" in failures[0].error

    def test_timeout_kills_and_retries(self, tmp_path):
        marker = str(tmp_path / "hang.marker")
        pool = ResilientPool(
            _flaky, workers=1, retries=1, cell_timeout=1.0, backoff_base=0.0
        )
        results, failures = pool.run([(9, marker, "hang")])
        assert results == [81]
        assert failures == []

    def test_timeout_without_retries_reports_failure(self, tmp_path):
        marker = str(tmp_path / "hang-once.marker")
        pool = ResilientPool(_flaky, workers=1, retries=0, cell_timeout=0.5)
        results, failures = pool.run([(9, marker, "hang")])
        assert results == [None]
        assert len(failures) == 1
        assert "timed out" in failures[0].error

    def test_backoff_is_deterministic(self):
        pool = ResilientPool(_square, backoff_base=0.5)
        assert [pool._backoff(n) for n in (1, 2, 3)] == [0.5, 1.0, 2.0]
        assert ResilientPool(_square, backoff_base=0.0)._backoff(3) == 0.0

    def test_progress_counts_every_settled_cell(self, tmp_path):
        calls = []
        pool = ResilientPool(_boom, workers=1, retries=0, backoff_base=0.0)
        pool.run([1, 2], progress=lambda done, total: calls.append((done, total)))
        assert calls == [(1, 2), (2, 2)]

    def test_keyboard_interrupt_reaps_workers(self):
        pool = ResilientPool(_square, workers=2)
        with pytest.raises(KeyboardInterrupt):
            pool.run(list(range(4)), progress=_interrupting_progress)
        # The pool must not leave orphaned children behind.
        import multiprocessing

        deadline = time.monotonic() + 5.0
        while multiprocessing.active_children() and time.monotonic() < deadline:
            time.sleep(0.05)
        assert multiprocessing.active_children() == []

    def test_sigkilled_simulation_is_byte_identical(self, tmp_path):
        """The headline chaos claim: SIGKILL one worker mid-cell, and the
        completed sweep's serialized results match an undisturbed run."""
        marker = str(tmp_path / "chaos.marker")
        undisturbed = [_simulate_payload((seed, None)) for seed in (1, 2, 3)]
        pool = ResilientPool(_simulate_payload, workers=2, retries=2, backoff_base=0.0)
        disturbed, failures = pool.run([(1, None), (2, marker), (3, None)])
        assert failures == []
        assert os.path.exists(marker)  # the kill really happened
        assert disturbed == undisturbed


# ----------------------------------------------------------------------
# Executor integration
# ----------------------------------------------------------------------
class TestResilientExecutor:
    def _cells(self, num_runs=2):
        config = SyntheticExperimentConfig(
            num_nodes=6,
            mean_inter_meeting=40.0,
            transfer_opportunity=50 * units.KB,
            duration=3 * units.MINUTE,
            buffer_capacity=20 * units.KB,
            deadline=30.0,
            packet_interval=50.0,
            mobility="exponential",
            num_runs=num_runs,
            seed=5,
        )
        grid = ScenarioGrid(
            config=config,
            protocols=[ProtocolSpec("rapid", "rapid"), ProtocolSpec("random", "random")],
            loads=(3.0,),
        )
        return grid.cells()

    def test_resilient_property(self):
        assert Executor(workers=2).resilient is False
        assert Executor(workers=2, retries=1).resilient is True
        assert Executor(workers=2, cell_timeout=30.0).resilient is True

    def test_executor_validates_resilience_knobs(self):
        with pytest.raises(ConfigurationError):
            Executor(retries=-1)
        with pytest.raises(ConfigurationError):
            Executor(cell_timeout=0.0)

    def test_resilient_backend_matches_plain(self):
        cells = self._cells()
        plain = ExperimentEngine(workers=1).run_cells(cells)
        resilient = ExperimentEngine(
            executor=Executor(workers=2, retries=2, cell_timeout=120.0)
        )
        healed = resilient.run_cells(cells)
        assert [r.to_dict() for r in healed] == [r.to_dict() for r in plain]
        assert resilient.last_failures == []
        assert resilient.stats.cells_failed == 0

    def test_telemetry_report_carries_failed_cells(self):
        telemetry = SweepTelemetry()
        telemetry.record_failure(index=3, label="rapid/load=2", attempts=3, error="boom")
        report = telemetry.report()
        assert report["version"] == SWEEP_REPORT_VERSION
        assert report["cells_failed"] == 1
        assert report["failed_cells"][0]["label"] == "rapid/load=2"


# ----------------------------------------------------------------------
# The sweep manifest
# ----------------------------------------------------------------------
class TestSweepManifest:
    def _cells(self):
        return TestResilientExecutor()._cells()

    def test_sweep_key_tracks_cell_identity(self):
        cells = self._cells()
        assert SweepManifest.sweep_key_for(cells) == SweepManifest.sweep_key_for(cells)
        assert SweepManifest.sweep_key_for(cells) != SweepManifest.sweep_key_for(cells[:-1])
        assert SweepManifest.sweep_key_for(cells) != SweepManifest.sweep_key_for(
            list(reversed(cells))
        )

    def test_roundtrip(self, tmp_path):
        cells = self._cells()
        path = tmp_path / "sweep.manifest.json"
        manifest = SweepManifest.for_cells(path, cells)
        manifest.mark_completed(cells[0].cache_key())
        manifest.mark_failed(cells[1].cache_key(), "worker died mid-cell")
        manifest.write()
        loaded = SweepManifest.load(path)
        assert loaded.matches(cells)
        assert loaded.completed_count == 1
        assert loaded.failed == {cells[1].cache_key(): "worker died mid-cell"}
        assert loaded.to_dict() == manifest.to_dict()

    def test_completion_clears_failure(self, tmp_path):
        cells = self._cells()
        manifest = SweepManifest.for_cells(tmp_path / "m.json", cells)
        key = cells[0].cache_key()
        manifest.mark_failed(key, "boom")
        manifest.mark_completed(key)
        assert manifest.failed == {}
        # A later failure report must not demote a completed cell.
        manifest.mark_failed(key, "boom again")
        assert manifest.failed == {}
        assert manifest.completed_count == 1

    def test_matches_rejects_other_grids(self, tmp_path):
        cells = self._cells()
        manifest = SweepManifest.for_cells(tmp_path / "m.json", cells)
        assert manifest.matches(cells)
        assert not manifest.matches(cells[:-1])

    def test_load_missing_manifest_is_a_clean_error(self, tmp_path):
        with pytest.raises(ConfigurationError, match="nothing to resume"):
            SweepManifest.load(tmp_path / "absent.manifest.json")

    def test_load_corrupt_manifest_is_a_clean_error(self, tmp_path):
        path = tmp_path / "corrupt.manifest.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ConfigurationError):
            SweepManifest.load(path)

    def test_load_rejects_future_versions(self, tmp_path):
        cells = self._cells()
        path = tmp_path / "future.manifest.json"
        manifest = SweepManifest.for_cells(path, cells)
        payload = manifest.to_dict()
        payload["version"] = 999
        path.write_text(json.dumps(payload), encoding="utf-8")
        with pytest.raises(ConfigurationError):
            SweepManifest.load(path)


# ----------------------------------------------------------------------
# Resume via the CLI
# ----------------------------------------------------------------------
class TestResumeCli:
    SWEEP = [
        "sweep",
        "--family",
        "synthetic",
        "--protocols",
        "rapid,random",
        "--loads",
        "2",
        "--metric",
        "delivery_rate",
    ]

    def test_resume_is_byte_identical(self, tmp_path, capsys):
        from repro.cli import main

        cache = str(tmp_path / "cache")
        assert main(self.SWEEP + ["--cache-dir", cache]) == 0
        first = capsys.readouterr().out
        assert main(self.SWEEP + ["--cache-dir", cache, "--resume"]) == 0
        resumed = capsys.readouterr()
        assert resumed.out == first
        assert "[resume]" in resumed.err

    def test_resume_requires_cache_dir(self, capsys):
        from repro.cli import main

        assert main(self.SWEEP + ["--resume"]) != 0
        assert "--cache-dir" in capsys.readouterr().err

    def test_resume_without_manifest_fails_cleanly(self, tmp_path, capsys):
        from repro.cli import main

        cache = str(tmp_path / "empty-cache")
        assert main(self.SWEEP + ["--cache-dir", cache, "--resume"]) != 0
        assert "nothing to resume" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Fail-fast output validation
# ----------------------------------------------------------------------
class TestOutputValidation:
    @staticmethod
    def _blocked(tmp_path):
        """A path whose parent is a file — mkdir on it must fail."""
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory\n", encoding="utf-8")
        return blocker / "trace.jsonl"

    def test_validate_writable_creates_missing_parents(self, tmp_path):
        target = tmp_path / "new" / "dir" / "trace.jsonl"
        validate_writable(target)
        assert target.parent.is_dir()

    def test_validate_writable_rejects_file_as_parent(self, tmp_path):
        with pytest.raises(ConfigurationError):
            validate_writable(self._blocked(tmp_path))

    def test_validate_writable_rejects_directory_path(self, tmp_path):
        with pytest.raises(ConfigurationError):
            validate_writable(tmp_path)

    def test_jsonl_sink_fails_fast(self, tmp_path):
        with pytest.raises(ConfigurationError):
            JsonlSink(self._blocked(tmp_path))

    def test_cli_rejects_unwritable_trace_out_before_running(self, tmp_path, capsys):
        from repro.cli import main

        target = str(self._blocked(tmp_path))
        code = main(
            [
                "sweep",
                "--family",
                "synthetic",
                "--protocols",
                "rapid",
                "--loads",
                "2",
                "--trace-out",
                target,
            ]
        )
        assert code != 0
        assert "trace" in capsys.readouterr().err.lower()
