"""Eviction-path consistency, ack budget clipping and hot-path units.

The eviction audit (buffer, hop counts and RAPID replica metadata must
never disagree), the ``send_acks`` budget fix (only acks that fit the
remaining opportunity are learned by the peer) and focused units for the
incremental hot path: the per-destination serve-order index, the
cascade-scoped eviction-score cache and the lazy-heap candidate ranking.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import constants, units
from repro.core.rapid import RapidProtocol
from repro.core import delay as delay_module
from repro.dtn.node import Node
from repro.dtn.packet import PacketFactory
from repro.dtn.workload import PoissonWorkload
from repro.mobility.exponential import ExponentialMobility
from repro.routing.base import ProtocolContext, RoutingProtocol, TransferBudget
from repro.routing.registry import create_factory


def make_rapid_pair(capacity=float("inf"), **kwargs):
    nodes = {0: Node.with_capacity(0, capacity), 1: Node.with_capacity(1, capacity)}
    context = ProtocolContext(nodes=nodes)
    x = RapidProtocol(nodes[0], context, **kwargs)
    y = RapidProtocol(nodes[1], context, **kwargs)
    return x, y, context


def assert_protocol_consistent(protocol: RoutingProtocol) -> None:
    """Buffer, hop counts and (for RAPID) metadata must agree exactly."""
    buffered = set(protocol.buffer.packet_ids)
    assert set(protocol.hop_counts) == buffered, (
        f"node {protocol.node_id}: hop counts {sorted(protocol.hop_counts)} "
        f"disagree with buffer {sorted(buffered)}"
    )
    protocol.buffer.check_integrity()
    if isinstance(protocol, RapidProtocol):
        for packet_id in buffered:
            entry = protocol.metadata.get(packet_id)
            assert entry is not None and protocol.node_id in entry.replicas, (
                f"node {protocol.node_id}: buffered packet {packet_id} has no "
                f"self replica record"
            )
        for entry in protocol.metadata.entries():
            if protocol.node_id in entry.replicas:
                assert entry.packet_id in buffered, (
                    f"node {protocol.node_id}: metadata claims a self replica "
                    f"of {entry.packet_id} that is not buffered"
                )


class TestEvictionConsistency:
    def test_eviction_removes_metadata_hop_count_and_buffer_entry(self):
        x, y, _ = make_rapid_pair(capacity=2048)
        factory = PacketFactory()
        first = factory.create(source=3, destination=5, size=1024, creation_time=0.0)
        second = factory.create(source=3, destination=6, size=1024, creation_time=1.0)
        third = factory.create(source=3, destination=7, size=2048, creation_time=2.0)
        assert x.accept_replica(first, y, now=0.0)
        assert x.accept_replica(second, y, now=1.0)
        # Third needs the whole buffer: a two-step eviction cascade.
        assert x.accept_replica(third, y, now=2.0)
        assert first.packet_id not in x.buffer
        assert second.packet_id not in x.buffer
        assert_protocol_consistent(x)

    def test_refused_cascade_leaves_state_consistent(self):
        x, y, _ = make_rapid_pair(capacity=1024)
        factory = PacketFactory()
        own = factory.create(source=0, destination=5, size=1024)
        assert x.on_packet_created(own, now=0.0)
        relayed = factory.create(source=3, destination=6, size=1024)
        # An incoming relay may not displace the own unacked packet.
        assert not x.accept_replica(relayed, y, now=1.0)
        assert_protocol_consistent(x)
        assert own.packet_id in x.buffer

    @pytest.mark.parametrize("protocol_name", ["rapid", "maxprop", "prophet"])
    def test_invariants_hold_under_storage_pressure(self, protocol_name):
        mobility = ExponentialMobility(
            num_nodes=6, mean_inter_meeting=40.0, transfer_opportunity=30 * units.KB, seed=2
        )
        schedule = mobility.generate(600.0)
        workload = PoissonWorkload(packets_per_hour=240.0, seed=3)
        packets = workload.generate(list(range(6)), 600.0)
        simulator_result = None

        from repro.dtn.simulator import Simulator

        simulator = Simulator(
            schedule=schedule,
            packets=packets,
            protocol_factory=create_factory(protocol_name),
            buffer_capacity=10 * units.KB,
            seed=4,
        )
        original = simulator._handle_meeting

        def checked(meeting, now, contact_id=-1):
            original(meeting, now, contact_id)
            for protocol in simulator.protocols.values():
                assert_protocol_consistent(protocol)

        simulator._handle_meeting = checked
        simulator_result = simulator.run()
        assert simulator_result.meetings_processed > 0
        total_drops = sum(p.storage_drops for p in simulator.protocols.values())
        assert total_drops > 0, "scenario must actually exercise eviction"


class _CountingMetric:
    """Wraps a metric to count eviction_score evaluations."""

    def __init__(self, metric):
        self._metric = metric
        self.eviction_scores = 0

    def __getattr__(self, name):
        return getattr(self._metric, name)

    def eviction_score(self, packet, remaining, now):
        self.eviction_scores += 1
        return self._metric.eviction_score(packet, remaining, now)


class TestEvictionScoreCache:
    def test_cascade_rescores_only_same_destination(self):
        x, y, _ = make_rapid_pair(capacity=4096)
        counting = _CountingMetric(x.metric)
        x.metric = counting
        factory = PacketFactory()
        # Four relayed 1 KB packets to four distinct destinations.
        stored = [
            factory.create(source=3, destination=10 + i, size=1024, creation_time=float(i))
            for i in range(4)
        ]
        for packet in stored:
            assert x.accept_replica(packet, y, now=packet.creation_time)
        counting.eviction_scores = 0
        incoming = factory.create(source=3, destination=20, size=3072, creation_time=5.0)
        assert x.accept_replica(incoming, y, now=5.0)
        # Cascade of three evictions over four candidates: the reference
        # path rescores every remaining candidate at every step (4+3+2=9);
        # the cache scores each candidate once because every victim is the
        # sole packet for its destination (4 scores total).
        assert counting.eviction_scores == 4
        assert_protocol_consistent(x)

    def test_cache_invalidated_for_victims_destination(self):
        x, y, _ = make_rapid_pair(capacity=3072)
        counting = _CountingMetric(x.metric)
        x.metric = counting
        factory = PacketFactory()
        same_a = factory.create(source=3, destination=10, size=1024, creation_time=0.0)
        same_b = factory.create(source=3, destination=10, size=1024, creation_time=1.0)
        other = factory.create(source=3, destination=11, size=1024, creation_time=2.0)
        for packet, now in ((same_a, 0.0), (same_b, 1.0), (other, 2.0)):
            assert x.accept_replica(packet, y, now=now)
        counting.eviction_scores = 0
        incoming = factory.create(source=3, destination=20, size=2048, creation_time=5.0)
        assert x.accept_replica(incoming, y, now=5.0)
        # Step 1 scores all three candidates.  If a destination-10 packet is
        # evicted, the surviving destination-10 packet must be rescored in
        # step 2 (its queue position changed) — more than three evaluations
        # in total proves the invalidation fires.
        assert counting.eviction_scores >= 3
        assert_protocol_consistent(x)


class TestAckBudgetClipping:
    class _CountingAckProtocol(RoutingProtocol):
        name = "counting-acks"
        uses_acks = True
        counts_control_bytes = True

        def replication_candidates(self, peer, now):
            return iter(())

    def _pair(self):
        nodes = {0: Node.with_capacity(0, float("inf")), 1: Node.with_capacity(1, float("inf"))}
        context = ProtocolContext(nodes=nodes)
        a = self._CountingAckProtocol(nodes[0], context)
        b = self._CountingAckProtocol(nodes[1], context)
        return a, b

    def test_only_acks_that_fit_are_learned(self):
        a, b = self._pair()
        a.acked = {1, 2, 3, 4, 5}
        budget = TransferBudget(capacity=2.5 * constants.RAPID_ACK_ENTRY_BYTES)
        a.send_acks(b, budget)
        # Two whole entries fit; they are sent in packet-id order.
        assert b.acked == {1, 2}
        assert budget.metadata_bytes == 2 * constants.RAPID_ACK_ENTRY_BYTES

    def test_exhausted_budget_transfers_no_acks(self):
        a, b = self._pair()
        a.acked = {7, 8}
        budget = TransferBudget(capacity=100.0)
        budget.charge_data(100.0)
        a.send_acks(b, budget)
        assert b.acked == set()
        assert budget.metadata_bytes == 0.0

    def test_uncounted_channel_still_floods_everything(self):
        a, b = self._pair()
        a.counts_control_bytes = False
        a.acked = {1, 2, 3}
        budget = TransferBudget(capacity=1.0)
        a.send_acks(b, budget)
        assert b.acked == {1, 2, 3}
        assert budget.metadata_bytes == 0.0

    def test_infinite_budget_sends_everything(self):
        # Meeting.capacity defaults to infinity; `inf // entry` is NaN, so
        # the clipping arithmetic must special-case unconstrained budgets.
        a, b = self._pair()
        a.acked = {1, 2, 3}
        budget = TransferBudget(capacity=float("inf"))
        a.send_acks(b, budget)
        assert b.acked == {1, 2, 3}
        assert budget.metadata_bytes == 3 * constants.RAPID_ACK_ENTRY_BYTES


class TestLazyHeapRanking:
    def test_heap_order_matches_eager_reference_sort(self):
        x, y, _ = make_rapid_pair()
        factory = PacketFactory()
        now = 200.0
        x.meetings.record_meeting(5, now=50.0)
        y.meetings.record_meeting(5, now=80.0)
        y.meetings.record_meeting(6, now=90.0)
        for i in range(12):
            packet = factory.create(
                source=0,
                destination=5 + (i % 3),
                size=500 + 100 * (i % 4),
                creation_time=float(10 * (i // 2)),  # deliberate age ties
            )
            x.on_packet_created(packet, now=packet.creation_time)
        lazy = [p.packet_id for p in x.replication_candidates(y, now)]
        reference = [p.packet_id for _, p in x._ranked_candidates(y, now)]
        assert lazy == reference

    def test_vectorized_delays_match_scalar(self):
        rng = np.random.default_rng(0)
        meetings = rng.uniform(1.0, 1e4, size=64)
        meetings[::7] = float("inf")
        ahead = rng.integers(0, 10**7, size=64).astype(float)
        sizes = rng.integers(1, 10**5, size=64).astype(float)
        transfers = rng.uniform(1.0, 10**6, size=64)
        vector = delay_module.direct_delivery_delay_array(meetings, ahead, sizes, transfers)
        for k in range(64):
            scalar = delay_module.direct_delivery_delay(
                meetings[k], ahead[k], sizes[k], transfers[k]
            )
            assert vector[k] == scalar
