"""Tests for the offline optimal router (ILP and earliest-arrival)."""

import pytest

from repro.dtn.packet import PacketFactory
from repro.dtn.workload import single_packet_workload
from repro.exceptions import ConfigurationError, OptimizationError
from repro.mobility.schedule import Meeting, MeetingSchedule
from repro.optimal.ilp import build_ilp, interpret_solution
from repro.optimal.router import OptimalRouter
from repro.optimal.solver import solve_ilp
from repro.optimal.time_expanded import (
    build_time_expanded_graph,
    earliest_arrival,
    earliest_arrival_all,
)


@pytest.fixture
def relay_schedule():
    """0 meets 1 at t=10, 1 meets 2 at t=20, 0 meets 2 at t=50."""
    meetings = [
        Meeting(time=10.0, node_a=0, node_b=1, capacity=1024),
        Meeting(time=20.0, node_a=1, node_b=2, capacity=1024),
        Meeting(time=50.0, node_a=0, node_b=2, capacity=1024),
    ]
    return MeetingSchedule(meetings, duration=60.0)


class TestEarliestArrival:
    def test_relay_path_found(self, relay_schedule):
        packet = single_packet_workload(source=0, destination=2, creation_time=0.0)[0]
        arrival = earliest_arrival(relay_schedule, packet)
        assert arrival.delivered
        assert arrival.delivery_time == 20.0
        assert arrival.delay(horizon=60.0) == 20.0

    def test_creation_time_respected(self, relay_schedule):
        packet = single_packet_workload(source=0, destination=2, creation_time=15.0)[0]
        arrival = earliest_arrival(relay_schedule, packet)
        # The 0-1 meeting at t=10 is too early; direct meeting at t=50 wins.
        assert arrival.delivery_time == 50.0

    def test_unreachable(self, relay_schedule):
        packet = single_packet_workload(source=2, destination=0, creation_time=30.0)[0]
        arrival = earliest_arrival(relay_schedule, packet)
        assert arrival.delivery_time == 50.0
        missing = single_packet_workload(source=0, destination=9, creation_time=0.0)[0]
        assert not earliest_arrival(relay_schedule, missing).delivered

    def test_all(self, relay_schedule):
        factory = PacketFactory()
        packets = [
            factory.create(source=0, destination=2),
            factory.create(source=1, destination=0),
        ]
        arrivals = earliest_arrival_all(relay_schedule, packets)
        assert len(arrivals) == 2

    def test_time_expanded_graph(self, relay_schedule):
        graph = build_time_expanded_graph(relay_schedule)
        assert (0, 10.0) in graph.graph
        path = graph.earliest_path(0, 2, start_time=0.0)
        assert path is not None
        assert path[0][0] == 0 and path[-1][0] == 2


class TestILP:
    def test_single_packet_relay(self, relay_schedule):
        packets = single_packet_workload(source=0, destination=2, creation_time=0.0)
        problem = build_ilp(relay_schedule, packets)
        solution = solve_ilp(problem)
        delivery = interpret_solution(problem, solution.variable_values)
        assert delivery[packets[0].packet_id] == 20.0
        # Objective equals the delay of the delivered packet.
        assert solution.objective_value == pytest.approx(20.0)

    def test_bandwidth_contention_forces_choice(self):
        # One meeting that fits a single packet; two packets want it.
        schedule = MeetingSchedule(
            [Meeting(time=10.0, node_a=0, node_b=1, capacity=1024)], duration=30.0
        )
        factory = PacketFactory()
        packets = [
            factory.create(source=0, destination=1, size=1024, creation_time=0.0),
            factory.create(source=0, destination=1, size=1024, creation_time=0.0),
        ]
        problem = build_ilp(schedule, packets)
        solution = solve_ilp(problem)
        delivery = interpret_solution(problem, solution.variable_values)
        delivered = [pid for pid, t in delivery.items() if t is not None]
        assert len(delivered) == 1
        # Total delay: 10 for the delivered packet + 30 for the undelivered.
        assert solution.objective_value == pytest.approx(40.0)

    def test_requires_packets(self, relay_schedule):
        with pytest.raises(OptimizationError):
            build_ilp(relay_schedule, [])

    def test_no_forwarding_out_of_destination(self, relay_schedule):
        packets = single_packet_workload(source=0, destination=1, creation_time=0.0)
        problem = build_ilp(relay_schedule, packets)
        for (packet_index, edge_index) in problem.variable_index:
            _, tail, _, _, _ = problem.edges[edge_index]
            assert tail != packets[packet_index].destination


class TestOptimalRouter:
    def test_auto_small_uses_ilp(self, relay_schedule):
        packets = single_packet_workload(source=0, destination=2, creation_time=0.0)
        router = OptimalRouter(method="auto")
        outcome = router.solve(relay_schedule, packets)
        assert outcome.method.startswith("ilp")
        assert outcome.delivery_rate() == 1.0
        assert outcome.average_delay() == pytest.approx(20.0)

    def test_earliest_arrival_method(self, relay_schedule):
        packets = single_packet_workload(source=0, destination=2, creation_time=0.0)
        router = OptimalRouter(method="earliest-arrival")
        outcome = router.solve(relay_schedule, packets)
        assert outcome.method == "earliest-arrival"
        assert outcome.max_delay() == pytest.approx(20.0)

    def test_auto_large_falls_back(self, relay_schedule):
        factory = PacketFactory()
        packets = [factory.create(source=0, destination=2) for _ in range(5)]
        router = OptimalRouter(method="auto", max_ilp_packets=2)
        outcome = router.solve(relay_schedule, packets)
        assert outcome.method == "earliest-arrival"

    def test_undelivered_counted_with_horizon(self, relay_schedule):
        packets = single_packet_workload(source=0, destination=9, creation_time=0.0)
        outcome = OptimalRouter(method="earliest-arrival").solve(relay_schedule, packets)
        assert outcome.delivery_rate() == 0.0
        assert outcome.average_delay(include_undelivered=True) == pytest.approx(60.0)
        assert outcome.average_delay(include_undelivered=False) == 0.0

    def test_validation(self, relay_schedule):
        with pytest.raises(ConfigurationError):
            OptimalRouter(method="magic")
        with pytest.raises(ConfigurationError):
            OptimalRouter().solve(relay_schedule, [])

    def test_optimal_lower_bounds_protocols(self, exponential_schedule, small_workload):
        from repro.dtn.simulator import run_simulation
        from repro.routing.registry import create_factory

        subset = small_workload[:40]
        outcome = OptimalRouter(method="earliest-arrival").solve(exponential_schedule, subset)
        simulated = run_simulation(exponential_schedule, subset, create_factory("epidemic"), seed=1)
        # The contention-free earliest arrival can never be beaten.
        assert outcome.average_delay(include_undelivered=True) <= (
            simulated.average_delay(include_undelivered=True) + 1e-6
        )
        assert outcome.delivery_rate() >= simulated.delivery_rate() - 1e-9
