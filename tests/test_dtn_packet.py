"""Tests for packets, acks and per-packet records."""

import pytest

from repro.dtn.packet import Ack, Packet, PacketFactory, PacketRecord


class TestPacket:
    def test_basic_fields(self):
        packet = Packet(packet_id=1, source=0, destination=2, size=512, creation_time=5.0)
        assert packet.size == 512
        assert packet.age(15.0) == 10.0
        assert packet.age(2.0) == 0.0  # never negative

    def test_rejects_zero_size(self):
        with pytest.raises(ValueError):
            Packet(packet_id=1, source=0, destination=2, size=0)

    def test_rejects_same_source_and_destination(self):
        with pytest.raises(ValueError):
            Packet(packet_id=1, source=3, destination=3)

    def test_rejects_negative_creation_time(self):
        with pytest.raises(ValueError):
            Packet(packet_id=1, source=0, destination=1, creation_time=-1.0)

    def test_rejects_non_positive_deadline(self):
        with pytest.raises(ValueError):
            Packet(packet_id=1, source=0, destination=1, deadline=0.0)

    def test_deadline_helpers(self):
        packet = Packet(packet_id=1, source=0, destination=1, creation_time=10.0, deadline=20.0)
        assert packet.absolute_deadline() == 30.0
        assert packet.remaining_lifetime(15.0) == 15.0
        assert not packet.has_expired(29.0)
        assert packet.has_expired(30.5)

    def test_no_deadline(self):
        packet = Packet(packet_id=1, source=0, destination=1)
        assert packet.absolute_deadline() is None
        assert packet.remaining_lifetime(100.0) is None
        assert not packet.has_expired(1e9)


class TestPacketFactory:
    def test_ids_are_unique_and_increasing(self):
        factory = PacketFactory()
        packets = [factory.create(source=0, destination=1) for _ in range(10)]
        ids = [p.packet_id for p in packets]
        assert ids == sorted(set(ids))
        assert factory.next_id == 10

    def test_start_id(self):
        factory = PacketFactory(start_id=100)
        packet = factory.create(source=0, destination=1)
        assert packet.packet_id == 100


class TestPacketRecord:
    def test_delay_when_delivered(self):
        packet = Packet(packet_id=1, source=0, destination=1, creation_time=10.0)
        record = PacketRecord(packet)
        record.mark_delivered(70.0, node_id=1, hop_count=2)
        assert record.delivered
        assert record.delay() == 60.0
        assert record.hop_count == 2

    def test_delay_undelivered_requires_horizon(self):
        packet = Packet(packet_id=1, source=0, destination=1, creation_time=10.0)
        record = PacketRecord(packet)
        assert record.delay() is None
        assert record.delay(horizon=100.0) == 90.0

    def test_first_delivery_wins(self):
        packet = Packet(packet_id=1, source=0, destination=1)
        record = PacketRecord(packet)
        record.mark_delivered(50.0, node_id=1, hop_count=1)
        record.mark_delivered(20.0, node_id=1, hop_count=3)
        assert record.delivery_time == 50.0
        assert record.hop_count == 1

    def test_met_deadline(self):
        packet = Packet(packet_id=1, source=0, destination=1, creation_time=0.0, deadline=30.0)
        record = PacketRecord(packet)
        assert not record.met_deadline()
        record.mark_delivered(25.0, node_id=1, hop_count=1)
        assert record.met_deadline()

    def test_missed_deadline(self):
        packet = Packet(packet_id=1, source=0, destination=1, creation_time=0.0, deadline=30.0)
        record = PacketRecord(packet)
        record.mark_delivered(45.0, node_id=1, hop_count=1)
        assert not record.met_deadline()

    def test_no_deadline_counts_as_met_when_delivered(self):
        packet = Packet(packet_id=1, source=0, destination=1)
        record = PacketRecord(packet)
        record.mark_delivered(45.0, node_id=1, hop_count=1)
        assert record.met_deadline()


class TestAck:
    def test_fields(self):
        ack = Ack(packet_id=7, delivered_at=12.5)
        assert ack.packet_id == 7
        assert ack.delivered_at == 12.5
