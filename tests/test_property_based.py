"""Property-based tests (hypothesis) for core data structures and invariants."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.fairness import jain_fairness_index
from repro.core import delay as delay_module
from repro.core.meeting_estimator import MeetingTimeEstimator
from repro.dtn.buffer import NodeBuffer
from repro.dtn.packet import Packet, PacketFactory
from repro.dtn.scheduler import EventQueue
from repro.dtn.events import (
    ContactEndEvent,
    ContactStartEvent,
    EndOfSimulationEvent,
    EventKind,
    MeetingEvent,
    NodeDownEvent,
    NodeUpEvent,
    PacketCreationEvent,
)
from repro.mobility.schedule import Contact, Meeting, MeetingSchedule

# ----------------------------------------------------------------------
# Buffer invariants
# ----------------------------------------------------------------------
packet_sizes = st.lists(st.integers(min_value=1, max_value=5000), min_size=0, max_size=30)


@given(sizes=packet_sizes, capacity=st.integers(min_value=1, max_value=20_000))
def test_buffer_never_exceeds_capacity(sizes, capacity):
    buffer = NodeBuffer(capacity=capacity)
    factory = PacketFactory()
    for size in sizes:
        packet = factory.create(source=0, destination=1, size=size)
        if buffer.fits(packet):
            buffer.add(packet)
        assert buffer.used_bytes <= capacity
    assert buffer.used_bytes == sum(p.size for p in buffer)


@given(sizes=packet_sizes)
def test_buffer_add_remove_roundtrip(sizes):
    buffer = NodeBuffer()
    factory = PacketFactory()
    packets = [factory.create(source=0, destination=1, size=size) for size in sizes]
    for packet in packets:
        buffer.add(packet)
    for packet in packets:
        buffer.remove(packet.packet_id)
    assert len(buffer) == 0 and buffer.used_bytes == 0


@given(
    ages=st.lists(st.floats(min_value=0, max_value=1000, allow_nan=False), min_size=1, max_size=20)
)
def test_bytes_ahead_is_consistent_total(ages):
    """Summing bytes_ahead over all same-destination packets counts each pair once."""
    buffer = NodeBuffer()
    factory = PacketFactory()
    packets = [
        factory.create(source=0, destination=9, size=100, creation_time=age) for age in ages
    ]
    for packet in packets:
        buffer.add(packet)
    now = 2000.0
    total_ahead = sum(buffer.bytes_ahead_of(p, now) for p in packets)
    n = len(packets)
    assert total_ahead == 100 * n * (n - 1) // 2


# ----------------------------------------------------------------------
# Delay estimation invariants
# ----------------------------------------------------------------------
delay_lists = st.lists(
    st.one_of(st.floats(min_value=0.1, max_value=1e6), st.just(float("inf"))),
    min_size=1,
    max_size=10,
)


@given(delays=delay_lists)
def test_combined_delay_never_exceeds_best_replica(delays):
    combined = delay_module.combined_remaining_delay(delays)
    assert combined <= min(delays) + 1e-9


@given(delays=delay_lists, extra=st.floats(min_value=0.1, max_value=1e6))
def test_adding_a_replica_never_hurts(delays, extra):
    before = delay_module.combined_remaining_delay(delays)
    after = delay_module.expected_delay_with_extra_replica(delays, extra)
    assert after <= before + 1e-9


@given(delays=delay_lists, window=st.floats(min_value=0.1, max_value=1e5))
def test_delivery_probability_in_unit_interval(delays, window):
    p = delay_module.delivery_probability_within(delays, window)
    assert 0.0 <= p <= 1.0


@given(
    delays=delay_lists,
    w1=st.floats(min_value=0.1, max_value=1e4),
    w2=st.floats(min_value=0.1, max_value=1e4),
)
def test_delivery_probability_monotone_in_window(delays, w1, w2):
    low, high = min(w1, w2), max(w1, w2)
    p_low = delay_module.delivery_probability_within(delays, low)
    p_high = delay_module.delivery_probability_within(delays, high)
    assert p_high >= p_low - 1e-12


@given(
    bytes_ahead=st.floats(min_value=0, max_value=1e7),
    packet_size=st.integers(min_value=1, max_value=100_000),
    transfer=st.floats(min_value=1, max_value=1e7),
)
def test_meetings_needed_at_least_one_and_monotone(bytes_ahead, packet_size, transfer):
    base = delay_module.meetings_needed(bytes_ahead, packet_size, transfer)
    more_queued = delay_module.meetings_needed(bytes_ahead * 2 + 1, packet_size, transfer)
    assert base >= 1
    assert more_queued >= base


# ----------------------------------------------------------------------
# Fairness index invariants
# ----------------------------------------------------------------------
@given(values=st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), min_size=1, max_size=40))
def test_jain_index_bounds(values):
    index = jain_fairness_index(values)
    assert 0.0 <= index <= 1.0 + 1e-12
    if len(set(values)) == 1 and values[0] > 0:
        assert index == pytest.approx(1.0)


# ----------------------------------------------------------------------
# Meeting schedule and event queue invariants
# ----------------------------------------------------------------------
meeting_rows = st.lists(
    st.tuples(
        st.floats(min_value=0, max_value=1e5, allow_nan=False),
        st.integers(min_value=0, max_value=9),
        st.integers(min_value=0, max_value=9),
        st.floats(min_value=1, max_value=1e6),
    ).filter(lambda row: row[1] != row[2]),
    min_size=0,
    max_size=40,
)


@given(rows=meeting_rows)
def test_schedule_is_time_ordered_and_complete(rows):
    schedule = MeetingSchedule.from_tuples(rows)
    times = [m.time for m in schedule]
    assert times == sorted(times)
    assert len(schedule) == len(rows)
    assert schedule.total_capacity() == pytest.approx(sum(r[3] for r in rows))


@given(times=st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), max_size=50))
def test_event_queue_pops_in_order(times):
    queue = EventQueue()
    for t in times:
        queue.push(EndOfSimulationEvent(time=t))
    popped = [event.time for event in queue.drain()]
    assert popped == sorted(times)


# ----------------------------------------------------------------------
# Contact event total order
# ----------------------------------------------------------------------
def _make_event(time: float, kind: EventKind, index: int):
    """Build a valid event of the requested kind for ordering tests."""
    if kind == EventKind.CONTACT_START:
        contact = Contact(time=time, node_a=0, node_b=1, capacity=1000.0, duration=5.0)
        return ContactStartEvent(time=time, contact=contact, contact_id=index)
    if kind == EventKind.PACKET_CREATION:
        packet = Packet(packet_id=index, source=0, destination=1, size=100, creation_time=time)
        return PacketCreationEvent(time=time, packet=packet)
    if kind == EventKind.MEETING:
        meeting = Meeting(time=time, node_a=0, node_b=1, capacity=1000.0)
        return MeetingEvent(time=time, meeting=meeting)
    if kind == EventKind.CONTACT_END:
        return ContactEndEvent(time=time, contact_id=index)
    if kind == EventKind.NODE_DOWN:
        return NodeDownEvent(time=time, node_id=index, wipe=bool(index % 2))
    if kind == EventKind.NODE_UP:
        return NodeUpEvent(time=time, node_id=index)
    return EndOfSimulationEvent(time=time)


event_kinds = st.sampled_from(list(EventKind))
event_entries = st.lists(
    st.tuples(st.floats(min_value=0, max_value=1e4, allow_nan=False), event_kinds),
    min_size=0,
    max_size=60,
)


@given(entries=event_entries)
def test_contact_event_total_order(entries):
    """Pops follow (time, kind priority, FIFO) for any mix of event kinds.

    In particular at equal timestamps: a contact start precedes a packet
    creation from the same instant (the creation lands *inside* the open
    window), which precedes the window's end — so creation-during-contact
    is transferable before the contact closes.
    """
    queue = EventQueue()
    for index, (time, kind) in enumerate(entries):
        queue.push(_make_event(time, kind, index))
    popped = queue.drain()
    keys = [(event.time, int(event.kind)) for event in popped]
    assert keys == sorted(keys)


@given(
    time=st.floats(min_value=0, max_value=1e4, allow_nan=False),
    order=st.permutations(list(EventKind)),
)
def test_same_instant_kind_order_is_insertion_independent(time, order):
    """start < creation < meeting < end < end-of-sim at one instant,
    whatever order the events were pushed in."""
    queue = EventQueue()
    for index, kind in enumerate(order):
        queue.push(_make_event(time, kind, index))
    popped = [event.kind for event in queue.drain()]
    assert popped == sorted(EventKind)


@given(
    time=st.floats(min_value=0, max_value=1e4, allow_nan=False),
    kind=event_kinds,
    count=st.integers(min_value=2, max_value=8),
)
def test_fifo_within_same_time_and_kind(time, kind, count):
    """Equal (time, kind) events pop in exact insertion order."""
    queue = EventQueue()
    events = [_make_event(time, kind, index) for index in range(count)]
    for event in events:
        queue.push(event)
    popped = queue.drain()
    assert [id(e) for e in popped] == [id(e) for e in events]


# ----------------------------------------------------------------------
# Interrupted-transfer bookkeeping invariants
# ----------------------------------------------------------------------
def _assert_bookkeeping_consistent(protocol) -> None:
    """Buffer, hop counts and (for RAPID) metadata must agree exactly."""
    from repro.core.rapid import RapidProtocol

    buffered = set(protocol.buffer.packet_ids)
    assert set(protocol.hop_counts) == buffered
    protocol.buffer.check_integrity()
    if isinstance(protocol, RapidProtocol):
        for packet_id in buffered:
            entry = protocol.metadata.get(packet_id)
            assert entry is not None and protocol.node_id in entry.replicas
        for entry in protocol.metadata.entries():
            if protocol.node_id in entry.replicas:
                assert entry.packet_id in buffered


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=5_000),
    interrupt_probability=st.floats(min_value=0.3, max_value=1.0),
    resume=st.booleans(),
    protocol=st.sampled_from(["rapid", "epidemic"]),
)
def test_interrupted_transfers_never_corrupt_bookkeeping(
    seed, interrupt_probability, resume, protocol
):
    """However contacts are cut, buffer / hop-count / metadata agree and
    the byte accounting stays within the (finite) offered capacity."""
    import numpy as np

    from repro.dtn.simulator import Simulator
    from repro.dtn.workload import PoissonWorkload
    from repro.routing.registry import create_factory

    rng = np.random.default_rng(seed)
    contacts = []
    for _ in range(25):
        a, b = rng.choice(5, size=2, replace=False)
        contacts.append(
            Contact(
                time=float(rng.uniform(0, 450)),
                node_a=int(a),
                node_b=int(b),
                capacity=float(rng.uniform(2_000, 20_000)),
                duration=float(rng.uniform(1.0, 25.0)),
            )
        )
    schedule = MeetingSchedule(contacts, nodes=range(5), duration=500.0)
    packets = PoissonWorkload(packets_per_hour=120.0, packet_size=1024, seed=seed + 1).generate(
        range(5), 500.0
    )
    simulator = Simulator(
        schedule,
        packets,
        create_factory(protocol),
        buffer_capacity=10 * 1024,
        seed=seed,
        options={
            "contact_model": "interruptible",
            "contact_interrupt_probability": interrupt_probability,
            "contact_resume": resume,
        },
    )
    result = simulator.run()
    for proto in simulator.protocols.values():
        _assert_bookkeeping_consistent(proto)
    assert result.data_bytes + result.metadata_bytes <= result.total_capacity_bytes + 1e-6
    assert result.transfers_resumed <= result.transfers_interrupted
    if resume:
        assert result.partial_bytes_wasted == 0.0
    else:
        assert result.transfers_resumed == 0


# ----------------------------------------------------------------------
# Meeting-time estimator invariants
# ----------------------------------------------------------------------
@given(
    meeting_times=st.lists(
        st.floats(min_value=1.0, max_value=1e5, allow_nan=False), min_size=1, max_size=30
    )
)
def test_meeting_estimator_mean_positive_and_bounded(meeting_times):
    estimator = MeetingTimeEstimator(node_id=0)
    now = 0.0
    for gap in meeting_times:
        now += gap
        estimator.record_meeting(1, now=now)
    mean = estimator.direct_mean(1)
    assert mean is not None and mean > 0
    assert mean <= max(max(meeting_times), meeting_times[0] + 1e-6) + 1e-6
    assert estimator.expected_meeting_time(1) == mean
