"""Tests for the RAPID protocol: selection, inference, control channels."""

import pytest

from repro.core.control import (
    GlobalControlChannel,
    InBandControlChannel,
    LocalControlChannel,
    NoControlChannel,
    available_channels,
    make_channel,
)
from repro.core.rapid import RapidProtocol
from repro.core.utility import DeadlineMetric, MaximumDelayMetric
from repro.dtn.node import Node
from repro.dtn.packet import PacketFactory
from repro.dtn.simulator import run_simulation
from repro.dtn.workload import single_packet_workload
from repro.exceptions import ConfigurationError
from repro.mobility.schedule import Meeting, MeetingSchedule
from repro.routing.base import ProtocolContext, ProtocolFactory, TransferBudget
from repro.routing.registry import create_factory


def make_pair(metric="average_delay", channel="in-band", capacity=float("inf"), **kwargs):
    """Two connected RAPID instances sharing one context."""
    nodes = {0: Node.with_capacity(0, capacity), 1: Node.with_capacity(1, capacity)}
    context = ProtocolContext(nodes=nodes)
    x = RapidProtocol(nodes[0], context, metric=metric, control_channel=channel, **kwargs)
    y = RapidProtocol(nodes[1], context, metric=metric, control_channel=channel, **kwargs)
    return x, y, context


class TestControlChannelFactory:
    def test_available(self):
        assert set(available_channels()) == {"in-band", "local", "global", "none"}

    def test_aliases(self):
        assert isinstance(make_channel("oracle"), GlobalControlChannel)
        assert isinstance(make_channel("inband"), InBandControlChannel)

    def test_unknown(self):
        with pytest.raises(ConfigurationError):
            make_channel("smoke-signals")

    def test_invalid_cap(self):
        with pytest.raises(ConfigurationError):
            InBandControlChannel(fraction_cap=-0.1)

    def test_invalid_byte_scale(self):
        with pytest.raises(ConfigurationError):
            InBandControlChannel(byte_scale=0)

    def test_local_channel_excludes_third_party(self):
        channel = LocalControlChannel()
        assert channel.include_third_party is False

    def test_channels_count_bytes_flag(self):
        assert InBandControlChannel.counts_bytes
        assert not GlobalControlChannel.counts_bytes
        assert not NoControlChannel.counts_bytes


class TestRapidConstruction:
    def test_metric_resolution(self):
        x, _, _ = make_pair(metric="max_delay")
        assert isinstance(x.metric, MaximumDelayMetric)

    def test_deadline_default_applied(self):
        x, _, _ = make_pair(metric="deadline", default_deadline=90.0)
        assert isinstance(x.metric, DeadlineMetric)
        assert x.metric.default_deadline == 90.0

    def test_counts_control_bytes_follows_channel(self):
        in_band, _, _ = make_pair(channel="in-band")
        oracle, _, _ = make_pair(channel="global")
        assert in_band.counts_control_bytes
        assert not oracle.counts_control_bytes

    def test_registry_contains_instances(self):
        x, y, context = make_pair()
        registry = context.options["rapid_registry"]
        assert registry[0] is x and registry[1] is y


class TestRapidInference:
    def test_own_delay_estimate_uses_meeting_time_and_queue(self):
        x, y, _ = make_pair()
        factory = PacketFactory()
        packet = factory.create(source=0, destination=1, size=1000, creation_time=0.0)
        x.on_packet_created(packet, now=0.0)
        x.meetings.record_meeting(1, now=200.0)  # E(M_01) = 200
        x.transfer_sizes.record(1, 10_000.0)
        estimate = x.own_delay_estimate(packet, now=200.0)
        assert estimate == pytest.approx(200.0)

    def test_estimate_scales_with_queue_position(self):
        x, _, _ = make_pair()
        factory = PacketFactory()
        ahead = factory.create(source=0, destination=1, size=5000, creation_time=0.0)
        behind = factory.create(source=0, destination=1, size=1000, creation_time=10.0)
        x.on_packet_created(ahead, now=0.0)
        x.on_packet_created(behind, now=10.0)
        x.meetings.record_meeting(1, now=100.0)
        x.transfer_sizes.record(1, 4000.0)
        # 'behind' waits for 5000 bytes ahead + its own 1000 over 4000-byte
        # opportunities -> 2 meetings -> 200 seconds.
        assert x.own_delay_estimate(behind, now=100.0) == pytest.approx(200.0)
        assert x.own_delay_estimate(ahead, now=100.0) == pytest.approx(200.0)

    def test_replica_delays_include_metadata_holders(self):
        x, _, _ = make_pair()
        factory = PacketFactory()
        packet = factory.create(source=0, destination=1, size=1000)
        x.on_packet_created(packet, now=0.0)
        x.meetings.record_meeting(1, now=100.0)
        x.metadata.update_replica(packet, holder_id=5, delay_estimate=50.0, now=1.0)
        delays = x.replica_delays(packet, now=100.0)
        assert len(delays) == 2
        assert 50.0 in delays

    def test_marginal_utility_positive_for_good_peer(self):
        x, y, _ = make_pair()
        factory = PacketFactory()
        packet = factory.create(source=0, destination=5, size=1000)
        x.on_packet_created(packet, now=0.0)
        x.meetings.record_meeting(5, now=400.0)
        y.meetings.record_meeting(5, now=100.0)  # peer meets the destination sooner
        gain = x.marginal_utility(packet, y, now=400.0)
        assert gain > 0

    def test_known_replica_count(self):
        x, _, _ = make_pair()
        factory = PacketFactory()
        packet = factory.create(source=0, destination=1)
        x.on_packet_created(packet, now=0.0)
        assert x.known_replica_count(packet.packet_id) == 1
        x.metadata.update_replica(packet, holder_id=7, delay_estimate=10.0, now=1.0)
        assert x.known_replica_count(packet.packet_id) == 2

    def test_describe_buffer(self):
        x, _, _ = make_pair()
        factory = PacketFactory()
        x.on_packet_created(factory.create(source=0, destination=1), now=0.0)
        description = x.describe_buffer(now=10.0)
        assert len(description) == 1
        assert {"packet_id", "age", "expected_delay", "utility", "known_replicas"} <= set(description[0])


class TestRapidExchange:
    def test_in_band_exchange_shares_acks_and_buffer_state(self):
        x, y, _ = make_pair()
        factory = PacketFactory()
        packet = factory.create(source=0, destination=9, size=1000)
        x.on_packet_created(packet, now=0.0)
        x.acked.add(1234)
        budget = TransferBudget(capacity=100_000)
        x.on_meeting_start(y, now=10.0)
        y.on_meeting_start(x, now=10.0)
        x.exchange_control(y, now=10.0, budget=budget)
        assert 1234 in y.acked
        assert packet.packet_id in y.metadata
        assert budget.metadata_bytes > 0

    def test_metadata_cap_zero_blocks_exchange(self):
        x, y, _ = make_pair(metadata_fraction_cap=0.0)
        factory = PacketFactory()
        x.on_packet_created(factory.create(source=0, destination=9), now=0.0)
        x.acked.add(7)
        budget = TransferBudget(capacity=100_000)
        x.exchange_control(y, now=10.0, budget=budget)
        assert budget.metadata_bytes == 0
        assert 7 not in y.acked

    def test_local_channel_omits_third_party_records(self):
        x, y, _ = make_pair(channel="local")
        factory = PacketFactory()
        packet = factory.create(source=0, destination=9)
        # X only knows about the packet via metadata (it is not buffered here).
        x.metadata.update_replica(packet, holder_id=5, delay_estimate=10.0, now=1.0)
        budget = TransferBudget(capacity=100_000)
        x.exchange_control(y, now=10.0, budget=budget)
        assert packet.packet_id not in y.metadata

    def test_in_band_channel_forwards_third_party_records(self):
        x, y, _ = make_pair(channel="in-band")
        factory = PacketFactory()
        packet = factory.create(source=0, destination=9)
        x.metadata.update_replica(packet, holder_id=5, delay_estimate=10.0, now=1.0)
        budget = TransferBudget(capacity=100_000)
        x.exchange_control(y, now=10.0, budget=budget)
        assert packet.packet_id in y.metadata

    def test_learn_ack_purges_state(self):
        x, _, _ = make_pair()
        factory = PacketFactory()
        packet = factory.create(source=0, destination=9)
        x.on_packet_created(packet, now=0.0)
        x.learn_ack(packet.packet_id, now=5.0)
        assert packet.packet_id not in x.buffer
        assert packet.packet_id not in x.metadata
        assert packet.packet_id in x.acked

    def test_byte_scale_reduces_charge(self):
        x1, y1, _ = make_pair()
        x2, y2, _ = make_pair(metadata_byte_scale=0.1)
        factory = PacketFactory()
        for x in (x1, x2):
            for _ in range(5):
                x.on_packet_created(factory.create(source=0, destination=9), now=0.0)
        b1 = TransferBudget(capacity=100_000)
        b2 = TransferBudget(capacity=100_000)
        x1.exchange_control(y1, now=10.0, budget=b1)
        x2.exchange_control(y2, now=10.0, budget=b2)
        assert 0 < b2.metadata_bytes < b1.metadata_bytes


class TestRapidSelection:
    def test_replication_prefers_fewer_replicas(self):
        x, y, _ = make_pair()
        factory = PacketFactory()
        # Both packets have the same destination and age; one already has an
        # extra known replica, so the other has higher marginal utility.
        lonely = factory.create(source=0, destination=5, size=1000, creation_time=0.0)
        popular = factory.create(source=0, destination=5, size=1000, creation_time=0.0)
        x.on_packet_created(popular, now=0.0)
        x.on_packet_created(lonely, now=0.0)
        x.meetings.record_meeting(5, now=100.0)
        y.meetings.record_meeting(5, now=100.0)
        x.metadata.update_replica(popular, holder_id=7, delay_estimate=100.0, now=1.0)
        order = list(x.replication_candidates(y, now=100.0))
        assert order[0].packet_id == lonely.packet_id

    def test_max_delay_metric_prioritises_highest_expected_delay(self):
        x, y, _ = make_pair(metric="max_delay")
        factory = PacketFactory()
        # Different destinations so queueing does not change the ordering:
        # the older packet has the larger expected delay D = T + A.
        old = factory.create(source=0, destination=5, size=1000, creation_time=0.0)
        new = factory.create(source=0, destination=6, size=1000, creation_time=500.0)
        x.on_packet_created(old, now=0.0)
        x.on_packet_created(new, now=500.0)
        for node in (x, y):
            node.meetings.record_meeting(5, now=600.0)
            node.meetings.record_meeting(6, now=600.0)
        order = list(x.replication_candidates(y, now=600.0))
        assert order[0].packet_id == old.packet_id

    def test_unhelpful_replication_ranked_last_not_dropped(self):
        x, y, _ = make_pair()
        factory = PacketFactory()
        helpful = factory.create(source=0, destination=5, size=1000, creation_time=0.0)
        hopeless = factory.create(source=0, destination=6, size=1000, creation_time=0.0)
        x.on_packet_created(helpful, now=0.0)
        x.on_packet_created(hopeless, now=0.0)
        # Both X and Y know how to reach node 5 but nobody ever meets node 6.
        x.meetings.record_meeting(5, now=100.0)
        y.meetings.record_meeting(5, now=100.0)
        order = [p.packet_id for p in x.replication_candidates(y, now=100.0)]
        assert order == [helpful.packet_id, hopeless.packet_id]

    def test_direct_delivery_order_oldest_first_for_delay_metric(self):
        x, _, _ = make_pair()
        factory = PacketFactory()
        old = factory.create(source=0, destination=1, creation_time=0.0)
        new = factory.create(source=0, destination=1, creation_time=50.0)
        x.on_packet_created(new, now=50.0)
        x.on_packet_created(old, now=50.0)
        order = x.direct_delivery_order(1, now=100.0)
        assert [p.packet_id for p in order] == [old.packet_id, new.packet_id]

    def test_eviction_never_drops_own_unacked_for_incoming_relay(self):
        x, y, _ = make_pair(capacity=2048)
        factory = PacketFactory()
        own = factory.create(source=0, destination=5, size=1024)
        own2 = factory.create(source=0, destination=6, size=1024)
        x.on_packet_created(own, now=0.0)
        x.on_packet_created(own2, now=0.0)
        relayed = factory.create(source=3, destination=7, size=1024)
        accepted = x.accept_replica(relayed, y, now=1.0)
        assert not accepted
        assert own.packet_id in x.buffer and own2.packet_id in x.buffer

    def test_new_own_packet_displaces_old_own_packet(self):
        x, _, _ = make_pair(capacity=1024)
        factory = PacketFactory()
        first = factory.create(source=0, destination=5, size=1024, creation_time=0.0)
        second = factory.create(source=0, destination=6, size=1024, creation_time=10.0)
        assert x.on_packet_created(first, now=0.0)
        assert x.on_packet_created(second, now=10.0)
        assert second.packet_id in x.buffer
        assert first.packet_id not in x.buffer


class TestRapidEndToEnd:
    def test_relay_delivery_via_simulator(self):
        # 0 meets 1 early, 1 meets 2 later; a RAPID packet from 0 to 2 should
        # be replicated to 1 and delivered at the second meeting.
        meetings = [
            Meeting(time=10.0, node_a=0, node_b=1, capacity=50_000),
            Meeting(time=30.0, node_a=1, node_b=2, capacity=50_000),
            Meeting(time=40.0, node_a=0, node_b=1, capacity=50_000),
        ]
        schedule = MeetingSchedule(meetings, duration=60.0)
        packets = single_packet_workload(source=0, destination=2, creation_time=0.0)
        result = run_simulation(schedule, packets, create_factory("rapid"), seed=1)
        assert result.num_delivered == 1
        assert result.record_for(packets[0].packet_id).delivery_time == pytest.approx(30.0)

    def test_global_channel_runs_and_charges_nothing(self, exponential_schedule, small_workload):
        result = run_simulation(
            exponential_schedule,
            small_workload,
            create_factory("rapid-global"),
            buffer_capacity=64 * 1024,
            seed=2,
        )
        assert result.metadata_bytes == 0
        assert result.delivery_rate() > 0.3

    def test_all_three_metrics_run(self, exponential_schedule, small_workload):
        for metric in ("average_delay", "max_delay", "deadline"):
            result = run_simulation(
                exponential_schedule,
                small_workload,
                create_factory("rapid", metric=metric),
                buffer_capacity=64 * 1024,
                seed=3,
            )
            assert result.delivery_rate() > 0.3

    def test_acks_purge_replicas_elsewhere(self, exponential_schedule, small_workload):
        rapid = run_simulation(
            exponential_schedule, small_workload, create_factory("rapid"), buffer_capacity=64 * 1024, seed=4
        )
        # Acked packets should not remain buffered anywhere at the end in
        # large numbers: count replicas of delivered packets still stored.
        assert rapid.deliveries == rapid.num_delivered
