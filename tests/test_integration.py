"""Integration tests: whole-system invariants across protocols.

These tests run every registered protocol through the same small scenario
and check cross-cutting invariants the paper's evaluation relies on:
conservation of packets, bandwidth accounting, the benefit of replication
over direct delivery, and the benefit of acknowledgment flooding.
"""

import pytest

from repro.dtn.simulator import run_simulation
from repro.dtn.workload import PoissonWorkload
from repro.mobility.exponential import ExponentialMobility
from repro.mobility.powerlaw import PowerLawMobility
from repro.routing.registry import available_protocols, create_factory

ALL_PROTOCOLS = [
    "rapid", "rapid-local", "rapid-global", "maxprop", "spray-and-wait",
    "prophet", "random", "random-acks", "epidemic", "epidemic-acks", "direct",
]


@pytest.fixture(scope="module")
def scenario():
    mobility = ExponentialMobility(
        num_nodes=8, mean_inter_meeting=60.0, transfer_opportunity=40 * 1024, seed=21
    )
    schedule = mobility.generate(500.0)
    packets = PoissonWorkload(packets_per_hour=40.0, seed=22, deadline=90.0).generate(range(8), 500.0)
    return schedule, packets


@pytest.fixture(scope="module")
def results(scenario):
    schedule, packets = scenario
    outcomes = {}
    for name in ALL_PROTOCOLS:
        outcomes[name] = run_simulation(
            schedule, packets, create_factory(name), buffer_capacity=30 * 1024, seed=5
        )
    return outcomes


class TestCrossProtocolInvariants:
    def test_registry_covers_tested_protocols(self):
        assert set(ALL_PROTOCOLS) <= set(available_protocols())

    def test_delivery_rate_in_unit_interval(self, results):
        for name, result in results.items():
            assert 0.0 <= result.delivery_rate() <= 1.0, name

    def test_packet_conservation(self, scenario, results):
        _, packets = scenario
        for name, result in results.items():
            assert result.num_packets == len(packets), name
            assert result.num_delivered <= result.num_packets, name

    def test_bandwidth_never_exceeds_capacity(self, results):
        for name, result in results.items():
            assert result.data_bytes + result.metadata_bytes <= result.total_capacity_bytes + 1e-6, name

    def test_delays_are_non_negative_and_bounded_by_duration(self, results):
        for name, result in results.items():
            for record in result.delivered_records():
                delay = record.delay()
                assert delay is not None and 0.0 <= delay <= result.duration + 10.0, name

    def test_deadline_success_never_exceeds_delivery_rate(self, results):
        for name, result in results.items():
            assert result.deadline_success_rate() <= result.delivery_rate() + 1e-9, name

    def test_replication_beats_direct_delivery(self, results):
        direct = results["direct"].delivery_rate()
        for name in ("rapid", "maxprop", "epidemic", "spray-and-wait"):
            assert results[name].delivery_rate() >= direct, name

    def test_acks_do_not_hurt_random(self, results):
        assert results["random-acks"].delivery_rate() >= results["random"].delivery_rate() - 0.05

    def test_only_rapid_variants_charge_metadata(self, results):
        for name, result in results.items():
            if name in ("rapid", "rapid-local"):
                assert result.metadata_bytes > 0, name
            else:
                assert result.metadata_bytes == 0, name

    def test_direct_protocol_never_replicates(self, results):
        assert results["direct"].replications == 0

    def test_spray_and_wait_replicates_less_than_epidemic(self, results):
        assert results["spray-and-wait"].replications <= results["epidemic"].replications


class TestRapidMetricsShapeEachOther:
    """RAPID instantiated with a metric should do best on that metric
    (compared with the other RAPID instantiations on the same scenario)."""

    @pytest.fixture(scope="class")
    def rapid_by_metric(self, scenario):
        schedule, packets = scenario
        outcomes = {}
        for metric in ("average_delay", "max_delay", "deadline"):
            outcomes[metric] = run_simulation(
                schedule,
                packets,
                create_factory("rapid", metric=metric),
                buffer_capacity=30 * 1024,
                seed=5,
            )
        return outcomes

    def test_deadline_metric_best_at_deadlines(self, rapid_by_metric):
        deadline_rate = rapid_by_metric["deadline"].deadline_success_rate()
        assert deadline_rate >= rapid_by_metric["max_delay"].deadline_success_rate() - 0.02

    def test_all_metrics_deliver_reasonably(self, rapid_by_metric):
        for metric, result in rapid_by_metric.items():
            assert result.delivery_rate() > 0.4, metric


class TestMobilityModelsIntegrate:
    def test_powerlaw_scenario_runs_all_protocols(self):
        mobility = PowerLawMobility(num_nodes=6, mean_inter_meeting=50.0, seed=9)
        schedule = mobility.generate(240.0)
        packets = PoissonWorkload(packets_per_hour=60.0, seed=10, deadline=40.0).generate(range(6), 240.0)
        for name in ("rapid", "maxprop", "spray-and-wait", "random"):
            result = run_simulation(schedule, packets, create_factory(name), buffer_capacity=20 * 1024)
            assert result.num_packets == len(packets)

    def test_same_workload_same_schedule_is_deterministic(self, scenario):
        schedule, packets = scenario
        a = run_simulation(schedule, packets, create_factory("rapid"), buffer_capacity=30 * 1024, seed=77)
        b = run_simulation(schedule, packets, create_factory("rapid"), buffer_capacity=30 * 1024, seed=77)
        assert a.delivery_rate() == b.delivery_rate()
        assert a.average_delay() == pytest.approx(b.average_delay())
        assert a.replications == b.replications
