"""Tests for the observability subsystem.

Covers the trace sinks and recorder, the bounded metrics registry, the
sweep-telemetry aggregation, the trace inspector, and — most importantly
— the two contracts the subsystem makes to the rest of the repo:

* **byte identity when off** — a run with observability disabled emits
  exactly the bytes it emitted before the subsystem existed, and a run
  with observability *on* changes nothing but the opt-in blocks;
* **determinism when on** — traces and metrics are pure functions of
  the cell's inputs: identical across executor backends, worker counts
  and result-cache states.
"""

import json
import math

import pytest

from repro import units
from repro.dtn.results import SimulationResult
from repro.dtn.simulator import run_simulation
from repro.dtn.workload import PoissonWorkload
from repro.engine import ExperimentEngine, ObservabilityOptions, ScenarioGrid, SweepTelemetry
from repro.exceptions import ConfigurationError
from repro.experiments.config import ProtocolSpec, SyntheticExperimentConfig
from repro.mobility.exponential import ExponentialMobility
from repro.observability import (
    Histogram,
    JsonlSink,
    MemorySink,
    MetricsRegistry,
    NullSink,
    TraceRecorder,
    event_line,
)
from repro.observability.inspect import (
    TraceFormatError,
    load_trace,
    node_summary,
    packet_table,
    packet_timeline,
    trace_overview,
)
from repro.observability.metrics import metrics_interval_from
from repro.routing.registry import create_factory


def _canonical(payloads):
    return json.dumps(payloads, sort_keys=True, separators=(",", ":"))


def _quick_inputs(seed=3, duration=240.0):
    mobility = ExponentialMobility(
        num_nodes=5,
        mean_inter_meeting=40.0,
        transfer_opportunity=50 * units.KB,
        seed=seed,
    )
    schedule = mobility.generate(duration)
    workload = PoissonWorkload(packets_per_hour=240.0, seed=seed + 1)
    packets = workload.generate(list(range(5)), duration)
    return schedule, packets


def _grid(num_runs=1, loads=(4.0,), protocols=("rapid", "epidemic")):
    config = SyntheticExperimentConfig(
        num_nodes=6,
        mean_inter_meeting=40.0,
        transfer_opportunity=50 * units.KB,
        duration=3 * units.MINUTE,
        buffer_capacity=20 * units.KB,
        deadline=30.0,
        packet_interval=50.0,
        mobility="exponential",
        num_runs=num_runs,
        seed=5,
    )
    specs = [ProtocolSpec(label=name, registry_name=name) for name in protocols]
    return ScenarioGrid(config=config, protocols=specs, loads=loads)


# ----------------------------------------------------------------------
# Trace sinks and recorder
# ----------------------------------------------------------------------
class TestTraceSinks:
    def test_event_line_is_canonical(self):
        line = event_line({"b": 1, "a": 2.5, "t": 0.0})
        assert line == '{"a":2.5,"b":1,"t":0.0}'

    def test_memory_sink_collects_and_renders(self):
        sink = MemorySink()
        recorder = TraceRecorder(sink)
        recorder.ack_learned(3, 7)
        assert len(sink) == 1
        assert sink.events[0] == {"t": 0.0, "ev": "ack_learned", "node": 3, "packet": 7}
        assert sink.lines() == [event_line(sink.events[0])]

    def test_null_sink_recorder_emits_nothing(self):
        recorder = TraceRecorder(NullSink())
        assert recorder.enabled is False
        recorder.ack_learned(0, 0)  # must not raise nor build anything

    def test_default_sink_is_null(self):
        assert TraceRecorder().enabled is False

    def test_recorder_clock_stamps_acks(self):
        sink = MemorySink()
        recorder = TraceRecorder(sink)
        recorder.clock(12.5)
        recorder.ack_learned(1, 2)
        assert sink.events[0]["t"] == 12.5

    def test_infinite_capacity_serializes_as_null(self):
        sink = MemorySink()
        TraceRecorder(sink).contact_open(0, 1, 5.0, math.inf)
        assert sink.events[0]["capacity"] is None
        json.loads(sink.lines()[0])  # strict JSON

    def test_jsonl_sink_writes_lazily(self, tmp_path):
        path = tmp_path / "sub" / "trace.jsonl"
        sink = JsonlSink(path)
        assert not path.exists()  # lazy: nothing until the first event
        recorder = TraceRecorder(sink)
        recorder.ack_learned(0, 1)
        recorder.ack_learned(1, 1)
        sink.close()
        sink.close()  # idempotent
        lines = path.read_text().splitlines()
        assert len(lines) == 3  # schema header + two events
        header = json.loads(lines[0])
        assert header["schema"] == "repro-dtn-trace"
        assert header["version"] == 1
        assert "packet_created" in header["events"]
        assert json.loads(lines[1])["ev"] == "ack_learned"


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
class TestHistogram:
    def test_buckets_by_sign_and_decade(self):
        histogram = Histogram()
        for value in (0.0, 0.5, 5.0, 500.0, -5.0):
            histogram.observe(value)
        assert histogram.buckets == {"0": 1, "e0": 2, "e2": 1, "-e0": 1}
        assert histogram.count == 5
        assert histogram.min == -5.0 and histogram.max == 500.0

    def test_mean_is_exact(self):
        histogram = Histogram()
        histogram.observe(1.0)
        histogram.observe(3.0)
        assert histogram.mean == 2.0

    def test_infinite_values_bucket_by_sign(self):
        histogram = Histogram()
        histogram.observe(math.inf)
        histogram.observe(-math.inf)
        histogram.observe(2.0)
        assert histogram.buckets["inf"] == 1 and histogram.buckets["-inf"] == 1
        assert histogram.mean == 2.0  # infinities excluded from the mean

    def test_empty_to_dict(self):
        payload = Histogram().to_dict()
        assert payload["count"] == 0
        assert payload["min"] is None and payload["max"] is None


class TestMetricsRegistry:
    def test_sampling_boundaries(self):
        registry = MetricsRegistry(interval=10.0)
        assert registry.due(0.0)  # first boundary is t=0
        registry.push(registry.next_sample_time, {"g": 1.0})
        assert not registry.due(5.0)
        assert registry.due(10.0)

    def test_decimation_bounds_memory(self):
        registry = MetricsRegistry(interval=1.0, max_samples=8)
        for step in range(64):
            if registry.due(float(step)):
                registry.push(registry.next_sample_time, {"g": float(step)})
        assert len(registry) < 8
        assert registry.interval > 1.0
        assert registry.requested_interval == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            MetricsRegistry(interval=0.0)
        with pytest.raises(ValueError):
            MetricsRegistry(interval=1.0, max_samples=2)

    def test_counters_and_histograms(self):
        registry = MetricsRegistry(interval=1.0)
        registry.count("drops")
        registry.count("drops", 2.0)
        registry.observe("utility", 10.0)
        payload = registry.to_dict()
        assert payload["counters"] == {"drops": 3.0}
        assert payload["histograms"]["utility"]["count"] == 1

    def test_interval_option_parsing(self):
        assert metrics_interval_from(None) is None
        assert metrics_interval_from({}) is None
        assert metrics_interval_from({"metrics_interval": 5}) == 5.0
        with pytest.raises(ValueError):
            metrics_interval_from({"metrics_interval": -1.0})


# ----------------------------------------------------------------------
# Options and sweep telemetry
# ----------------------------------------------------------------------
class TestObservabilityOptions:
    def test_default_is_disabled(self):
        assert ObservabilityOptions().enabled is False

    def test_enabled_variants(self):
        assert ObservabilityOptions(trace=True).enabled
        assert ObservabilityOptions(metrics_interval=5.0).enabled

    def test_round_trip(self):
        options = ObservabilityOptions(trace=True, metrics_interval=2.0)
        assert ObservabilityOptions.from_dict(options.to_dict()) == options

    def test_validation(self):
        with pytest.raises(ValueError):
            ObservabilityOptions(metrics_interval=0.0)


class TestSweepTelemetry:
    def test_report_aggregates_cells(self):
        telemetry = SweepTelemetry(workers=2)
        telemetry.record_cell(0, "rapid", 2.0, cached=False)
        telemetry.record_cell(1, "rapid", 0.0, cached=True)
        telemetry.record_cell(2, "epidemic", 4.0, cached=False)
        telemetry.add_engine_wall(4.0)
        report = telemetry.report(cache_stats={"hits": 1}, engine_stats={"cells_total": 3})
        assert report["cells_total"] == 3
        assert report["cells_executed"] == 2
        assert report["cache_hits"] == 1
        assert report["cell_wall_s"]["sum"] == 6.0
        assert report["cell_wall_s"]["max"] == 4.0
        # 6 busy worker-seconds over a 2 x 4 s budget.
        assert report["worker_utilization"] == pytest.approx(0.75)
        assert report["slowest_cells"][0]["index"] == 2
        assert report["cache"] == {"hits": 1}
        assert report["engine"] == {"cells_total": 3}

    def test_utilization_none_without_wall(self):
        assert SweepTelemetry().worker_utilization() is None


# ----------------------------------------------------------------------
# Inspector
# ----------------------------------------------------------------------
class TestInspect:
    def _trace_file(self, tmp_path):
        sink = MemorySink()
        recorder = TraceRecorder(sink)
        recorder.contact_open(0, 1, 1.0, 10e3)
        recorder.clock(1.0)
        from repro.dtn.packet import Packet

        packet = Packet(packet_id=0, source=0, destination=1, size=1024, creation_time=0.5)
        recorder.packet_created(packet, stored=True)
        recorder.packet_replicated(packet, 0, 1, 1.5)
        recorder.packet_delivered(packet, 0, 1, 1.5, hops=1)
        recorder.ack_learned(1, 0)
        recorder.contact_close(0, 1, 2.0, 1024.0, 30.0)
        path = tmp_path / "trace.jsonl"
        path.write_text("\n".join(sink.lines()) + "\n")
        return path

    def test_load_and_overview(self, tmp_path):
        events = load_trace(self._trace_file(tmp_path))
        overview = trace_overview(events)
        assert "packets created:   1" in overview
        assert "contact_open" in overview

    def test_packet_views(self, tmp_path):
        events = load_trace(self._trace_file(tmp_path))
        timeline = packet_timeline(events, 0)
        assert "packet_created" in timeline and "packet_delivered" in timeline
        table = packet_table(events)
        assert "1.0" in table  # delay column: delivered 1.5 - created 0.5
        assert packet_timeline(events, 99).endswith("no events in trace")

    def test_node_views(self, tmp_path):
        events = load_trace(self._trace_file(tmp_path))
        summary = node_summary(events)
        assert summary.count("\n") == 2  # header + two nodes
        assert "no events in trace" in node_summary(events, 42)

    def test_rejects_bad_files(self, tmp_path):
        missing = tmp_path / "missing.jsonl"
        with pytest.raises(TraceFormatError):
            load_trace(missing)
        bad_json = tmp_path / "bad.jsonl"
        bad_json.write_text("{not json\n")
        with pytest.raises(TraceFormatError, match="not valid JSON"):
            load_trace(bad_json)
        not_event = tmp_path / "noevent.jsonl"
        not_event.write_text('{"foo": 1}\n')
        with pytest.raises(TraceFormatError, match="missing t/ev"):
            load_trace(not_event)

    def test_empty_views(self):
        assert trace_overview([]) == "empty trace (no events)"
        assert packet_table([]) == "no packet events in trace"
        assert node_summary([]) == "no node events in trace"


# ----------------------------------------------------------------------
# Simulator integration
# ----------------------------------------------------------------------
class TestSimulatorObservability:
    def test_headline_output_is_byte_identical(self):
        schedule, packets = _quick_inputs()
        default = run_simulation(
            schedule, packets, create_factory("rapid"), buffer_capacity=20 * units.KB, seed=7
        )
        sink = MemorySink()
        observed = run_simulation(
            schedule,
            packets,
            create_factory("rapid"),
            buffer_capacity=20 * units.KB,
            seed=7,
            options={"trace_sink": sink, "metrics_interval": 30.0},
        )
        assert sink.events, "instrumented run emitted no events"
        assert observed.metrics is not None
        headline = observed.to_dict()
        headline.pop("metrics")
        assert _canonical(headline) == _canonical(default.to_dict())

    def test_null_sink_is_the_default_path(self):
        schedule, packets = _quick_inputs()
        observed = run_simulation(
            schedule,
            packets,
            create_factory("rapid"),
            buffer_capacity=20 * units.KB,
            seed=7,
            options={"trace_sink": NullSink()},
        )
        default = run_simulation(
            schedule, packets, create_factory("rapid"), buffer_capacity=20 * units.KB, seed=7
        )
        assert observed.metrics is None
        assert _canonical(observed.to_dict()) == _canonical(default.to_dict())

    def test_trace_is_deterministic(self):
        schedule, packets = _quick_inputs()
        traces = []
        for _ in range(2):
            sink = MemorySink()
            run_simulation(
                schedule,
                packets,
                create_factory("rapid"),
                buffer_capacity=20 * units.KB,
                seed=7,
                options={"trace_sink": sink},
            )
            traces.append("\n".join(sink.lines()))
        assert traces[0] == traces[1]

    def test_metrics_block_round_trips(self):
        schedule, packets = _quick_inputs()
        result = run_simulation(
            schedule,
            packets,
            create_factory("rapid"),
            buffer_capacity=20 * units.KB,
            seed=7,
            options={"metrics_interval": 30.0},
        )
        metrics = result.metrics
        assert metrics is not None
        assert metrics["times"], "no samples were taken"
        assert "buffer_bytes_total" in metrics["series"]
        assert "delivery_rate" in metrics["series"]
        assert any(key.startswith("peak_buffer_bytes.") for key in metrics["counters"])
        restored = SimulationResult.from_dict(result.to_dict())
        assert _canonical(restored.to_dict()) == _canonical(result.to_dict())

    def test_invalid_options_rejected(self):
        schedule, packets = _quick_inputs()
        with pytest.raises(ConfigurationError):
            run_simulation(
                schedule,
                packets,
                create_factory("rapid"),
                buffer_capacity=20 * units.KB,
                seed=7,
                options={"trace_sink": "not-a-sink"},
            )
        with pytest.raises(ConfigurationError):
            run_simulation(
                schedule,
                packets,
                create_factory("rapid"),
                buffer_capacity=20 * units.KB,
                seed=7,
                options={"metrics_interval": -5.0},
            )


# ----------------------------------------------------------------------
# Engine integration
# ----------------------------------------------------------------------
class TestEngineObservability:
    def _traced(self, grid, workers, cache_dir=None):
        lines = []
        with ExperimentEngine(workers=workers, cache_dir=cache_dir) as engine:
            results = engine.run_cells(
                grid.cells(),
                observability=ObservabilityOptions(trace=True, metrics_interval=30.0),
                trace_writer=lines.append,
            )
            hits = engine.stats.cache_hits
        stripped = []
        for result in results:
            payload = result.to_dict()
            payload.pop("metrics", None)
            stripped.append(payload)
        return "\n".join(lines), _canonical(stripped), hits

    def test_trace_identical_across_backends_and_cache_states(self, tmp_path):
        grid = _grid()
        serial_trace, serial_results, _ = self._traced(grid, workers=1)
        parallel_trace, parallel_results, _ = self._traced(grid, workers=4)
        cold_trace, cold_results, _ = self._traced(grid, 1, tmp_path / "cache")
        warm_trace, warm_results, warm_hits = self._traced(grid, 1, tmp_path / "cache")
        assert parallel_trace == serial_trace
        assert cold_trace == serial_trace
        assert warm_trace == serial_trace
        assert parallel_results == serial_results == cold_results == warm_results
        # Tracing bypasses cache reads: a served hit would skip the
        # simulation that produces the trace.
        assert warm_hits == 0

    def test_telemetry_only_runs_still_use_the_cache(self, tmp_path):
        grid = _grid()
        with ExperimentEngine(cache_dir=tmp_path / "cache") as engine:
            baseline = [r.to_dict() for r in engine.run_cells(grid.cells())]
        telemetry = SweepTelemetry(workers=1)
        with ExperimentEngine(cache_dir=tmp_path / "cache") as engine:
            warm = [r.to_dict() for r in engine.run_cells(grid.cells(), telemetry=telemetry)]
            assert engine.stats.cache_hits == len(grid)
        assert _canonical(warm) == _canonical(baseline)
        report = telemetry.report()
        assert report["cache_hits"] == len(grid)
        assert report["cells_executed"] == 0

    def test_standing_engine_configuration(self):
        grid = _grid(protocols=("epidemic",))
        lines = []
        with ExperimentEngine() as engine:
            engine.observability = ObservabilityOptions(trace=True)
            engine.trace_writer = lines.append
            engine.run_cells(grid.cells())
        assert lines, "standing configuration produced no trace"

    def test_cache_strips_metrics(self, tmp_path):
        grid = _grid(protocols=("epidemic",))
        with ExperimentEngine(cache_dir=tmp_path / "cache") as engine:
            engine.run_cells(
                grid.cells(), observability=ObservabilityOptions(metrics_interval=30.0)
            )
        entries = list((tmp_path / "cache").glob("*/*.json"))
        assert entries, "instrumented run stored nothing"
        for entry in entries:
            stored = json.loads(entry.read_text())
            assert "metrics" not in stored["result"]
            assert "timings" not in stored["result"]
        # A later uninstrumented run serves clean results from the cache.
        with ExperimentEngine(cache_dir=tmp_path / "cache") as engine:
            results = engine.run_cells(grid.cells())
            assert engine.stats.cache_hits == len(grid)
        assert all(r.metrics is None and r.timings == {} for r in results)

    def test_telemetry_wall_times_from_parallel_workers(self, tmp_path):
        grid = _grid(num_runs=2)  # 4 cells
        telemetry = SweepTelemetry(workers=4)
        with ExperimentEngine(workers=4) as engine:
            engine.run_cells(grid.cells(), telemetry=telemetry)
        report = telemetry.report()
        assert report["cells_executed"] == len(grid)
        assert all(cell["wall_s"] > 0 for cell in report["cells"])
        assert 0.0 < report["worker_utilization"] <= 1.0


# ----------------------------------------------------------------------
# Profiling timings across parallel workers
# ----------------------------------------------------------------------
class TestTimingsMergeAcrossWorkers:
    def test_merge_sums_timings(self):
        a = SimulationResult(protocol_name="rapid", duration=10.0)
        a.timings = {"phase": 1.5, "phase_calls": 2.0}
        b = SimulationResult(protocol_name="rapid", duration=10.0)
        b.timings = {"phase": 2.5, "phase_calls": 3.0, "other": 1.0}
        merged = SimulationResult.merge([a, b])
        assert merged.timings == {"phase": 4.0, "phase_calls": 5.0, "other": 1.0}

    def test_timings_survive_workers_and_merge(self, monkeypatch):
        """Profiled cells keep their timings through the multiprocessing
        transport (workers=4), and day-style merging sums them."""
        monkeypatch.setenv("REPRO_PROFILE", "1")
        grid = _grid(num_runs=2, protocols=("epidemic",))  # 2 cells
        with ExperimentEngine(workers=4) as engine:
            results = engine.run_cells(grid.cells())
        assert len(results) == 2
        assert all(r.timings for r in results), "timings lost in worker transport"

        # Remap packet ids so the runs merge like distinct operating days.
        shifted = []
        offset = 0
        for result in results:
            payload = result.to_dict()
            for entry in payload["records"]:
                entry["packet"]["packet_id"] += offset
            offset += 10_000
            shifted.append(SimulationResult.from_dict(payload))
        merged = SimulationResult.merge(shifted)
        for key in results[0].timings:
            expected = sum(r.timings.get(key, 0.0) for r in results)
            assert merged.timings[key] == pytest.approx(expected)


# ----------------------------------------------------------------------
# Schema header and gzip transport
# ----------------------------------------------------------------------
class TestSchemaHeader:
    def test_header_shape(self):
        from repro.observability import (
            DECISION_EVENT_NAMES,
            SCHEMA_NAME,
            SCHEMA_VERSION,
            is_schema_header,
            schema_header,
        )

        header = schema_header()
        assert header["schema"] == SCHEMA_NAME
        assert header["version"] == SCHEMA_VERSION
        assert header["kind"] == "lifecycle"
        assert is_schema_header(header)
        decisions = schema_header(
            events=DECISION_EVENT_NAMES, kind="decisions", result_mode="streaming"
        )
        assert decisions["events"] == ["replication_rank", "eviction_choice"]
        assert decisions["result_mode"] == "streaming"
        # None-valued extras are dropped, not serialized as null.
        assert "result_mode" not in schema_header(result_mode=None)
        assert not is_schema_header({"t": 0.0, "ev": "packet_created"})
        assert not is_schema_header([1, 2])

    def test_read_trace_returns_header(self, tmp_path):
        from repro.observability.inspect import read_trace

        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        TraceRecorder(sink).ack_learned(0, 1)
        sink.close()
        header, events = read_trace(path)
        assert header is not None and header["version"] == 1
        assert len(events) == 1 and events[0]["ev"] == "ack_learned"

    def test_headerless_trace_still_loads(self, tmp_path):
        path = tmp_path / "old.jsonl"
        path.write_text('{"t":0.0,"ev":"ack_learned","node":0,"packet":1}\n')
        events = load_trace(path)
        assert len(events) == 1

    def test_unknown_version_warns(self, tmp_path, capsys):
        path = tmp_path / "future.jsonl"
        path.write_text(
            '{"schema":"repro-dtn-trace","version":99,"kind":"lifecycle","events":[]}\n'
            '{"t":0.0,"ev":"ack_learned","node":0,"packet":1}\n'
        )
        events = load_trace(path)
        assert len(events) == 1
        assert "version 99" in capsys.readouterr().err

    def test_header_only_first_record(self, tmp_path):
        # A schema-shaped dict after events is malformed, not a header.
        path = tmp_path / "mid.jsonl"
        path.write_text(
            '{"t":0.0,"ev":"ack_learned","node":0,"packet":1}\n'
            '{"schema":"repro-dtn-trace","version":1}\n'
        )
        with pytest.raises(TraceFormatError, match="missing t/ev"):
            load_trace(path)


class TestGzipTraces:
    def test_jsonl_sink_gzip_round_trip(self, tmp_path):
        import gzip

        path = tmp_path / "trace.jsonl.gz"
        sink = JsonlSink(path)
        recorder = TraceRecorder(sink)
        recorder.ack_learned(0, 1)
        recorder.ack_learned(1, 1)
        sink.close()
        with gzip.open(path, "rt", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        assert len(lines) == 3  # header + 2 events
        events = load_trace(path)
        assert [e["ev"] for e in events] == ["ack_learned", "ack_learned"]

    def test_gzip_bytes_are_deterministic(self, tmp_path):
        digests = []
        for name in ("a.jsonl.gz", "b.jsonl.gz"):
            path = tmp_path / name
            sink = JsonlSink(path)
            TraceRecorder(sink).ack_learned(0, 1)
            sink.close()
            digests.append(path.read_bytes())
        assert digests[0] == digests[1]

    def test_corrupt_gzip_is_a_trace_format_error(self, tmp_path):
        path = tmp_path / "bad.jsonl.gz"
        path.write_bytes(b"not gzip at all")
        with pytest.raises(TraceFormatError, match="cannot read"):
            load_trace(path)


# ----------------------------------------------------------------------
# Decision audit
# ----------------------------------------------------------------------
class TestDecisionRecorder:
    def test_null_sink_disables(self):
        from repro.observability import DecisionRecorder

        recorder = DecisionRecorder()
        assert recorder.enabled is False
        recorder = DecisionRecorder(NullSink())
        assert recorder.enabled is False

    def test_replication_rank_event(self):
        from repro.observability import DecisionRecorder

        sink = MemorySink()
        recorder = DecisionRecorder(sink)
        recorder.replication_rank(
            2, 5, 10.0, "rapid",
            candidates=[1, 3], score=[0.5, float("inf")], improves=[True, False],
        )
        event = sink.events[0]
        assert event["ev"] == "replication_rank"
        assert event["node"] == 2 and event["peer"] == 5 and event["t"] == 10.0
        assert event["candidates"] == [1, 3]
        assert event["score"] == [0.5, None]  # non-finite -> null
        assert event["improves"] == [True, False]
        json.loads(sink.lines()[0])  # strict canonical JSON

    def test_eviction_choice_event(self):
        from repro.observability import DecisionRecorder

        sink = MemorySink()
        recorder = DecisionRecorder(sink)
        recorder.eviction_choice(
            4, 20.0, "rapid", 9,
            candidates=[7, 8], score=[1.0, 2.0], victim=7, reason="lowest_score",
        )
        event = sink.events[0]
        assert event["ev"] == "eviction_choice"
        assert event["victim"] == 7 and event["reason"] == "lowest_score"
        recorder.eviction_choice(
            4, 21.0, "rapid", 9,
            candidates=[], score=[], victim=None, reason="own_packets_protected",
        )
        assert sink.events[1]["victim"] is None


class TestSimulatorDecisionAudit:
    def _run(self, protocol, sink, seed=3):
        schedule, packets = _quick_inputs(seed=seed)
        return run_simulation(
            schedule,
            packets,
            create_factory(protocol),
            buffer_capacity=8 * units.KB,
            seed=7,
            options={"decision_sink": sink} if sink is not None else None,
        )

    @pytest.mark.parametrize("protocol", ["rapid", "maxprop", "prophet", "balanced"])
    def test_protocols_emit_decisions(self, protocol):
        sink = MemorySink()
        self._run(protocol, sink)
        kinds = {e["ev"] for e in sink.events}
        assert "replication_rank" in kinds
        assert all(e["protocol"] == protocol for e in sink.events)
        for event in sink.events:
            if event["ev"] == "replication_rank":
                assert len(event["candidates"]) == len(event["score"])

    def test_audit_does_not_change_results(self):
        default = self._run("rapid", None)
        sink = MemorySink()
        audited = self._run("rapid", sink)
        assert sink.events, "audit emitted nothing under buffer pressure"
        assert _canonical(audited.to_dict()) == _canonical(default.to_dict())

    def test_audit_is_deterministic(self):
        traces = []
        for _ in range(2):
            sink = MemorySink()
            self._run("rapid", sink)
            traces.append("\n".join(sink.lines()))
        assert traces[0] == traces[1]

    def test_eviction_choices_recorded_under_pressure(self):
        sink = MemorySink()
        self._run("rapid", sink)
        evictions = [e for e in sink.events if e["ev"] == "eviction_choice"]
        assert evictions, "no eviction decisions under an 8KB buffer"
        for event in evictions:
            if event["victim"] is not None:
                assert event["victim"] in event["candidates"]
            assert event["reason"]

    def test_invalid_decision_sink_rejected(self):
        with pytest.raises(ConfigurationError, match="decision_sink"):
            self._run("rapid", "not-a-sink")


class TestEngineDecisionAudit:
    def _decisions(self, grid, workers, cache_dir=None):
        lines = []
        with ExperimentEngine(workers=workers, cache_dir=cache_dir) as engine:
            engine.run_cells(
                grid.cells(),
                observability=ObservabilityOptions(decisions=True),
                decisions_writer=lines.append,
            )
        return "\n".join(lines)

    def test_decisions_identical_across_backends_and_cache_states(self, tmp_path):
        grid = _grid()
        serial = self._decisions(grid, workers=1)
        parallel = self._decisions(grid, workers=4)
        cold = self._decisions(grid, 1, tmp_path / "cache")
        warm = self._decisions(grid, 1, tmp_path / "cache")
        assert serial, "no decision events traced"
        assert parallel == serial
        assert cold == serial == warm

    def test_options_round_trip_decisions_flag(self):
        options = ObservabilityOptions(decisions=True)
        assert options.enabled
        restored = ObservabilityOptions.from_dict(options.to_dict())
        assert restored.decisions is True
