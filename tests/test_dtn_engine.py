"""Tests for the event queue, workloads, results and the simulator itself."""

import pytest

from repro.dtn.events import EndOfSimulationEvent, MeetingEvent, PacketCreationEvent
from repro.dtn.node import DeploymentNoise, Node
from repro.dtn.packet import Packet, PacketFactory, PacketRecord
from repro.dtn.results import SimulationResult
from repro.dtn.scheduler import EventQueue
from repro.dtn.simulator import Simulator, run_simulation
from repro.dtn.workload import ParallelWorkload, PoissonWorkload, single_packet_workload
from repro.mobility.schedule import Meeting, MeetingSchedule
from repro.routing.registry import create_factory


class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue()
        factory = PacketFactory()
        queue.push(MeetingEvent(time=10.0, meeting=Meeting(time=10.0, node_a=0, node_b=1)))
        queue.push(
            PacketCreationEvent(time=5.0, packet=factory.create(source=0, destination=1, creation_time=5.0))
        )
        queue.push(EndOfSimulationEvent(time=20.0))
        times = [event.time for event in queue.drain()]
        assert times == [5.0, 10.0, 20.0]

    def test_creation_before_meeting_at_same_time(self):
        queue = EventQueue()
        factory = PacketFactory()
        queue.push(MeetingEvent(time=5.0, meeting=Meeting(time=5.0, node_a=0, node_b=1)))
        queue.push(
            PacketCreationEvent(time=5.0, packet=factory.create(source=0, destination=1, creation_time=5.0))
        )
        events = queue.drain()
        assert isinstance(events[0], PacketCreationEvent)
        assert isinstance(events[1], MeetingEvent)

    def test_peek(self):
        queue = EventQueue([EndOfSimulationEvent(time=3.0)])
        assert queue.peek_time() == 3.0
        assert len(queue) == 1

    def test_events_require_payload(self):
        with pytest.raises(ValueError):
            PacketCreationEvent(time=0.0)
        with pytest.raises(ValueError):
            MeetingEvent(time=0.0)


class TestWorkloads:
    def test_poisson_rate(self):
        workload = PoissonWorkload(packets_per_hour=60.0, seed=1)
        packets = workload.generate(nodes=[0, 1, 2], duration=3600.0)
        # 6 ordered pairs x ~60 packets/hour.
        assert 250 < len(packets) < 470
        assert all(p.source != p.destination for p in packets)
        assert packets == sorted(packets, key=lambda p: p.creation_time)

    def test_poisson_deadline_applied(self):
        workload = PoissonWorkload(packets_per_hour=30.0, deadline=99.0, seed=2)
        packets = workload.generate(nodes=[0, 1], duration=1000.0)
        assert packets and all(p.deadline == 99.0 for p in packets)

    def test_poisson_validation(self):
        with pytest.raises(ValueError):
            PoissonWorkload(packets_per_hour=0)
        with pytest.raises(ValueError):
            PoissonWorkload(packets_per_hour=5).generate(nodes=[0], duration=10.0)
        with pytest.raises(ValueError):
            PoissonWorkload(packets_per_hour=5).generate(nodes=[0, 1], duration=0.0)

    def test_parallel_batches(self):
        workload = ParallelWorkload(batch_size=5, seed=3)
        batches = workload.generate(nodes=range(6), duration=100.0, batch_interval=25.0)
        assert len(batches) == 4
        for batch in batches:
            assert len(batch) == 5
            assert len({p.creation_time for p in batch}) == 1

    def test_single_packet_workload(self):
        packets = single_packet_workload(source=1, destination=2, creation_time=5.0)
        assert len(packets) == 1
        assert packets[0].source == 1


class TestSimulatorBasics:
    def test_direct_delivery_on_single_meeting(self):
        schedule = MeetingSchedule([Meeting(time=10.0, node_a=0, node_b=1, capacity=10_000)], duration=20.0)
        packets = single_packet_workload(source=0, destination=1, creation_time=0.0)
        result = run_simulation(schedule, packets, create_factory("direct"))
        assert result.num_delivered == 1
        record = result.record_for(packets[0].packet_id)
        assert record.delivery_time == 10.0
        assert record.hop_count == 1

    def test_packet_created_after_meeting_not_delivered(self):
        schedule = MeetingSchedule([Meeting(time=10.0, node_a=0, node_b=1, capacity=10_000)], duration=20.0)
        packets = single_packet_workload(source=0, destination=1, creation_time=15.0)
        result = run_simulation(schedule, packets, create_factory("direct"))
        assert result.num_delivered == 0

    def test_multi_hop_delivery_with_epidemic(self, tiny_schedule):
        # 0 -> 1 at t=10, 1 -> 2 at t=20: packet from 0 to 2 needs a relay.
        packets = single_packet_workload(source=0, destination=2, creation_time=0.0)
        direct = run_simulation(tiny_schedule, packets, create_factory("direct"))
        epidemic = run_simulation(tiny_schedule, packets, create_factory("epidemic"))
        assert direct.num_delivered == 0
        assert epidemic.num_delivered == 1
        assert epidemic.record_for(packets[0].packet_id).delivery_time == 20.0
        assert epidemic.record_for(packets[0].packet_id).hop_count == 2

    def test_bandwidth_constraint_limits_transfers(self):
        # Opportunity fits only two 1 KB packets.
        schedule = MeetingSchedule([Meeting(time=10.0, node_a=0, node_b=1, capacity=2048)], duration=20.0)
        factory = PacketFactory()
        packets = [factory.create(source=0, destination=1, size=1024, creation_time=0.0) for _ in range(5)]
        result = run_simulation(schedule, packets, create_factory("epidemic"))
        assert result.num_delivered == 2
        assert result.data_bytes == 2048

    def test_storage_constraint_limits_replicas(self):
        schedule = MeetingSchedule(
            [Meeting(time=10.0, node_a=0, node_b=1, capacity=100_000)], duration=20.0
        )
        factory = PacketFactory()
        # Ten relayed packets destined to node 2, but node 1 can store only 3.
        packets = [factory.create(source=0, destination=2, size=1024, creation_time=0.0) for _ in range(10)]
        result = run_simulation(
            schedule, packets, create_factory("epidemic"), buffer_capacity=3 * 1024
        )
        assert result.replications <= 3

    def test_total_capacity_accounting(self, tiny_schedule):
        packets = single_packet_workload(source=0, destination=2)
        result = run_simulation(tiny_schedule, packets, create_factory("epidemic"))
        assert result.total_capacity_bytes == pytest.approx(tiny_schedule.total_capacity())
        assert result.meetings_processed == len(tiny_schedule)

    def test_invalid_buffer_capacity(self, tiny_schedule):
        packets = single_packet_workload(source=0, destination=2)
        with pytest.raises(Exception):
            Simulator(tiny_schedule, packets, create_factory("epidemic"), buffer_capacity=0)

    def test_deployment_noise_misses_meetings(self, exponential_schedule, small_workload):
        noise = DeploymentNoise(capacity_jitter=0.0, meeting_miss_probability=0.5, processing_delay=0.0, seed=1)
        result = run_simulation(
            exponential_schedule, small_workload, create_factory("random"), noise=noise
        )
        assert result.meetings_missed > 0
        assert result.meetings_missed + result.meetings_processed == len(exponential_schedule)

    def test_deployment_noise_adds_processing_delay(self):
        schedule = MeetingSchedule([Meeting(time=10.0, node_a=0, node_b=1, capacity=10_000)], duration=20.0)
        packets = single_packet_workload(source=0, destination=1)
        noise = DeploymentNoise(capacity_jitter=0.0, meeting_miss_probability=0.0, processing_delay=7.0)
        result = run_simulation(schedule, packets, create_factory("direct"), noise=noise)
        assert result.record_for(packets[0].packet_id).delivery_time == 17.0

    def test_noise_validation(self):
        with pytest.raises(ValueError):
            DeploymentNoise(capacity_jitter=2.0)
        with pytest.raises(ValueError):
            DeploymentNoise(meeting_miss_probability=1.5)
        with pytest.raises(ValueError):
            DeploymentNoise(processing_delay=-1)


class TestSimulationResult:
    def _result_with_records(self):
        factory = PacketFactory()
        result = SimulationResult(protocol_name="test", duration=100.0)
        delivered = factory.create(source=0, destination=1, creation_time=0.0, deadline=50.0)
        missed = factory.create(source=0, destination=1, creation_time=0.0, deadline=10.0)
        lost = factory.create(source=0, destination=1, creation_time=40.0)
        result.records = {p.packet_id: PacketRecord(p) for p in (delivered, missed, lost)}
        result.records[delivered.packet_id].mark_delivered(30.0, 1, 1)
        result.records[missed.packet_id].mark_delivered(20.0, 1, 1)
        return result

    def test_headline_metrics(self):
        result = self._result_with_records()
        assert result.delivery_rate() == pytest.approx(2 / 3)
        assert result.average_delay() == pytest.approx(25.0)
        assert result.average_delay(include_undelivered=True) == pytest.approx((30 + 20 + 60) / 3)
        assert result.max_delay() == 30.0
        assert result.deadline_success_rate() == pytest.approx(1 / 3)

    def test_channel_metrics(self):
        result = self._result_with_records()
        result.total_capacity_bytes = 1000.0
        result.data_bytes = 200.0
        result.metadata_bytes = 50.0
        assert result.channel_utilization() == pytest.approx(0.25)
        assert result.metadata_fraction_of_bandwidth() == pytest.approx(0.05)
        assert result.metadata_fraction_of_data() == pytest.approx(0.25)

    def test_summary_keys(self):
        summary = self._result_with_records().summary()
        assert "delivery_rate" in summary and "average_delay" in summary

    def test_merge_rejects_duplicates(self):
        result = self._result_with_records()
        with pytest.raises(ValueError):
            SimulationResult.merge([result, result])

    def test_merge_combines_counts(self):
        a = self._result_with_records()
        factory = PacketFactory(start_id=100)
        b = SimulationResult(protocol_name="test", duration=100.0)
        packet = factory.create(source=0, destination=1)
        b.records = {packet.packet_id: PacketRecord(packet)}
        merged = SimulationResult.merge([a, b])
        assert merged.num_packets == 4

    def test_node_repr_and_counters(self):
        node = Node.with_capacity(3, 1024)
        assert node.node_id == 3
        assert not node.has_packet(1)
        assert "Node(3" in repr(node)
