"""Tests for unit helpers and package-level exports."""

import pytest

import repro
from repro import constants, units


class TestUnits:
    def test_time_helpers(self):
        assert units.minutes(2) == 120.0
        assert units.hours(1.5) == 5400.0
        assert units.seconds_to_minutes(90) == 1.5
        assert units.per_hour(3600) == 1.0

    def test_size_helpers(self):
        assert units.kilobytes(2) == 2048
        assert units.megabytes(1) == 1024 * 1024
        assert units.bytes_to_megabytes(1024 * 1024) == 1.0

    def test_format_duration(self):
        assert units.format_duration(42) == "42s"
        assert units.format_duration(90) == "1m30s"
        assert units.format_duration(3600) == "1h"
        assert units.format_duration(5460) == "1h31m"

    def test_format_bytes(self):
        assert units.format_bytes(512) == "512 B"
        assert units.format_bytes(2048) == "2.0 KB"
        assert units.format_bytes(3 * 1024 * 1024) == "3.0 MB"


class TestConstants:
    def test_paper_parameters(self):
        assert constants.SPRAY_AND_WAIT_COPIES == 12
        assert constants.PROPHET_P_INIT == 0.75
        assert constants.PROPHET_BETA == 0.25
        assert constants.PROPHET_GAMMA == 0.98
        assert constants.RAPID_MEETING_HOPS == 3
        assert constants.TRACE_NUM_DAYS == 58
        assert constants.SYNTHETIC_NUM_NODES == 20

    def test_never_meet_is_infinite(self):
        assert constants.NEVER_MEET == float("inf")


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__

    def test_public_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_snippet_runs(self):
        mobility = repro.ExponentialMobility(num_nodes=6, mean_inter_meeting=60.0, seed=1)
        schedule = mobility.generate(duration=300.0)
        packets = repro.PoissonWorkload(packets_per_hour=20, seed=2).generate(range(6), 300.0)
        result = repro.run_simulation(schedule, packets, repro.create_factory("rapid"))
        summary = result.summary()
        assert 0.0 <= summary["delivery_rate"] <= 1.0
