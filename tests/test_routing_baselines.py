"""Tests for the baseline routing protocols and the protocol registry."""

import pytest

from repro.dtn.node import Node
from repro.dtn.packet import PacketFactory
from repro.dtn.simulator import run_simulation
from repro.dtn.workload import single_packet_workload
from repro.exceptions import UnknownProtocolError
from repro.mobility.schedule import Meeting, MeetingSchedule
from repro.routing.base import ProtocolContext, ProtocolFactory, RoutingProtocol, TransferBudget
from repro.routing.maxprop import MaxPropProtocol
from repro.routing.prophet import ProphetProtocol
from repro.routing.random_routing import RandomProtocol, RandomWithAcksProtocol
from repro.routing.registry import available_protocols, create_factory, register_protocol
from repro.routing.spray_and_wait import SprayAndWaitProtocol


def build(protocol_cls, node_id=0, capacity=float("inf"), context=None, **kwargs):
    context = context or ProtocolContext(nodes={})
    node = Node.with_capacity(node_id, capacity)
    context.nodes[node_id] = node
    return protocol_cls(node, context, **kwargs), context


class TestTransferBudget:
    def test_accounting(self):
        budget = TransferBudget(capacity=1000)
        budget.charge_data(400)
        charged = budget.charge_metadata(300)
        assert charged == 300
        assert budget.remaining == 300
        assert budget.can_send(300)
        assert not budget.can_send(301)

    def test_metadata_clipped_to_remaining(self):
        budget = TransferBudget(capacity=100)
        assert budget.charge_metadata(500) == 100
        assert budget.remaining == 0

    def test_data_overflow_raises(self):
        budget = TransferBudget(capacity=100)
        with pytest.raises(ValueError):
            budget.charge_data(200)


class TestRegistry:
    def test_available_protocols(self):
        names = available_protocols()
        for expected in ("rapid", "rapid-local", "rapid-global", "maxprop",
                         "spray-and-wait", "prophet", "random", "random-acks",
                         "epidemic", "direct"):
            assert expected in names

    def test_unknown_protocol(self):
        with pytest.raises(UnknownProtocolError):
            create_factory("carrier-pigeon")

    def test_factory_passes_options(self):
        factory = create_factory("spray-and-wait", copies=4)
        context = ProtocolContext(nodes={})
        node = Node.with_capacity(0, 1e9)
        context.nodes[0] = node
        protocol = factory.create(node, context)
        assert protocol.copies == 4

    def test_register_custom_protocol(self):
        class NullProtocol(RandomProtocol):
            name = "null"

        register_protocol("null-test", lambda **kw: ProtocolFactory(NullProtocol, name="null", **kw))
        factory = create_factory("null-test")
        assert factory.name == "null"

    def test_factory_requires_protocol_subclass(self):
        with pytest.raises(TypeError):
            ProtocolFactory(object)

    def test_rapid_factory_label(self):
        assert create_factory("rapid", metric="max_delay").name == "rapid[max_delay,in-band]"
        assert create_factory("rapid", label="custom").name == "custom"


class TestSprayAndWait:
    def test_source_starts_with_l_copies(self):
        protocol, _ = build(SprayAndWaitProtocol, copies=8)
        factory = PacketFactory()
        packet = factory.create(source=0, destination=5)
        protocol.on_packet_created(packet, now=0.0)
        assert protocol.tokens[packet.packet_id] == 8

    def test_binary_split_on_replication(self):
        context = ProtocolContext(nodes={})
        sender, _ = build(SprayAndWaitProtocol, node_id=0, context=context, copies=8)
        receiver, _ = build(SprayAndWaitProtocol, node_id=1, context=context, copies=8)
        factory = PacketFactory()
        packet = factory.create(source=0, destination=5)
        sender.on_packet_created(packet, now=0.0)
        assert receiver.accept_replica(packet, sender, now=1.0)
        sender.on_replica_sent(packet, receiver, now=1.0)
        assert receiver.tokens[packet.packet_id] == 4
        assert sender.tokens[packet.packet_id] == 4

    def test_wait_phase_stops_replication(self):
        context = ProtocolContext(nodes={})
        sender, _ = build(SprayAndWaitProtocol, node_id=0, context=context, copies=1)
        receiver, _ = build(SprayAndWaitProtocol, node_id=1, context=context, copies=1)
        factory = PacketFactory()
        packet = factory.create(source=0, destination=5)
        sender.on_packet_created(packet, now=0.0)
        assert list(sender.replication_candidates(receiver, now=1.0)) == []

    def test_copy_budget_bounds_total_replicas(self):
        # With L=4 the packet should never exist at more than 4 nodes.
        meetings = [
            Meeting(time=float(t), node_a=0, node_b=peer, capacity=100_000)
            for t, peer in enumerate([1, 2, 3, 4, 5, 6, 7, 8], start=1)
        ]
        schedule = MeetingSchedule(meetings, duration=20.0)
        packets = single_packet_workload(source=0, destination=9)
        result = run_simulation(schedule, packets, create_factory("spray-and-wait", copies=4))
        assert result.replications <= 3  # 3 handed-out copies + the source's

    def test_invalid_copies(self):
        with pytest.raises(ValueError):
            build(SprayAndWaitProtocol, copies=0)


class TestProphet:
    def test_meeting_raises_predictability(self):
        protocol, _ = build(ProphetProtocol)
        peer, _ = build(ProphetProtocol, node_id=1)
        assert protocol.predictability_for(1) == 0.0
        protocol.on_meeting_start(peer, now=10.0)
        assert protocol.predictability_for(1) == pytest.approx(0.75)
        protocol.on_meeting_start(peer, now=20.0)
        assert protocol.predictability_for(1) > 0.75

    def test_aging_decays_predictability(self):
        protocol, _ = build(ProphetProtocol, aging_time_unit=10.0)
        peer, _ = build(ProphetProtocol, node_id=1)
        protocol.on_meeting_start(peer, now=0.0)
        before = protocol.predictability_for(1)
        after = protocol.predictability_for(1, now=1000.0)
        assert after < before

    def test_transitive_update(self):
        context = ProtocolContext(nodes={})
        a, _ = build(ProphetProtocol, node_id=0, context=context)
        b, _ = build(ProphetProtocol, node_id=1, context=context)
        b.predictability[5] = 0.9
        a.on_meeting_start(b, now=1.0)
        a.exchange_control(b, now=1.0, budget=TransferBudget(capacity=1e9))
        assert a.predictability_for(5) > 0.0

    def test_forwarding_rule(self):
        context = ProtocolContext(nodes={})
        a, _ = build(ProphetProtocol, node_id=0, context=context)
        b, _ = build(ProphetProtocol, node_id=1, context=context)
        factory = PacketFactory()
        packet = factory.create(source=0, destination=5)
        a.on_packet_created(packet, now=0.0)
        # B is a better relay for node 5 than A.
        b.predictability[5] = 0.8
        a.predictability[5] = 0.1
        assert [p.packet_id for p in a.replication_candidates(b, now=1.0)] == [packet.packet_id]
        # And not the other way around.
        a.predictability[5] = 0.95
        assert list(a.replication_candidates(b, now=1.0)) == []

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            build(ProphetProtocol, p_init=0.0)
        with pytest.raises(ValueError):
            build(ProphetProtocol, gamma=1.5)
        with pytest.raises(ValueError):
            build(ProphetProtocol, aging_time_unit=0.0)


class TestMaxProp:
    def test_meeting_probabilities_normalised(self):
        context = ProtocolContext(nodes={})
        a, _ = build(MaxPropProtocol, node_id=0, context=context)
        b, _ = build(MaxPropProtocol, node_id=1, context=context)
        c, _ = build(MaxPropProtocol, node_id=2, context=context)
        a.on_meeting_start(b, now=1.0)
        a.on_meeting_start(c, now=2.0)
        a.on_meeting_start(b, now=3.0)
        assert sum(a.meeting_probs.values()) == pytest.approx(1.0)
        assert a.meeting_probs[1] > a.meeting_probs[2]

    def test_destination_cost_via_relay(self):
        context = ProtocolContext(nodes={})
        a, _ = build(MaxPropProtocol, node_id=0, context=context)
        a.meeting_probs = {1: 1.0}
        a.known_vectors = {0: {1: 1.0}, 1: {2: 0.5, 0: 0.5}}
        cost = a.destination_cost(2)
        assert cost == pytest.approx(0.5)
        assert a.destination_cost(0) == 0.0
        assert a.destination_cost(99) == float("inf")

    def test_priority_order_new_packets_first(self):
        context = ProtocolContext(nodes={})
        a, _ = build(MaxPropProtocol, node_id=0, context=context)
        factory = PacketFactory()
        fresh = factory.create(source=0, destination=5)
        travelled = factory.create(source=3, destination=5)
        a.insert_packet(fresh, now=0.0, hop_count=0)
        a.insert_packet(travelled, now=0.0, hop_count=6)
        order = a._priority_order([travelled, fresh])
        assert order[0].packet_id == fresh.packet_id

    def test_ack_flooding_purges_buffers(self):
        context = ProtocolContext(nodes={})
        a, _ = build(MaxPropProtocol, node_id=0, context=context)
        b, _ = build(MaxPropProtocol, node_id=1, context=context)
        factory = PacketFactory()
        packet = factory.create(source=0, destination=5)
        b.insert_packet(packet, now=0.0, hop_count=1)
        a.acked.add(packet.packet_id)
        a.exchange_control(b, now=1.0, budget=TransferBudget(capacity=1e9))
        assert packet.packet_id not in b.buffer


class TestRandomAndBase:
    def test_random_candidates_cover_all_transferable(self):
        context = ProtocolContext(nodes={})
        a, _ = build(RandomProtocol, node_id=0, context=context)
        b, _ = build(RandomProtocol, node_id=1, context=context)
        factory = PacketFactory()
        packets = [factory.create(source=0, destination=5) for _ in range(5)]
        for packet in packets:
            a.on_packet_created(packet, now=0.0)
        candidates = {p.packet_id for p in a.replication_candidates(b, now=1.0)}
        assert candidates == {p.packet_id for p in packets}

    def test_random_with_acks_flag(self):
        assert RandomWithAcksProtocol.uses_acks
        assert not RandomProtocol.uses_acks

    def test_base_accept_rejects_duplicates_and_acked(self):
        context = ProtocolContext(nodes={})
        a, _ = build(RandomProtocol, node_id=0, context=context)
        b, _ = build(RandomProtocol, node_id=1, context=context)
        factory = PacketFactory()
        packet = factory.create(source=1, destination=5)
        b.on_packet_created(packet, now=0.0)
        assert a.accept_replica(packet, b, now=1.0)
        assert not a.accept_replica(packet, b, now=1.0)
        a.learn_ack(packet.packet_id, now=2.0)
        assert not a.accept_replica(packet, b, now=2.0)

    def test_hop_counts_propagate(self):
        context = ProtocolContext(nodes={})
        a, _ = build(RandomProtocol, node_id=0, context=context)
        b, _ = build(RandomProtocol, node_id=1, context=context)
        factory = PacketFactory()
        packet = factory.create(source=1, destination=5)
        b.on_packet_created(packet, now=0.0)
        a.accept_replica(packet, b, now=1.0)
        assert a.hop_counts[packet.packet_id] == 1

    def test_transferable_packets_excludes_peer_holdings(self):
        context = ProtocolContext(nodes={})
        a, _ = build(RandomProtocol, node_id=0, context=context)
        b, _ = build(RandomProtocol, node_id=1, context=context)
        factory = PacketFactory()
        shared = factory.create(source=0, destination=5)
        fresh = factory.create(source=0, destination=5)
        a.on_packet_created(shared, now=0.0)
        a.on_packet_created(fresh, now=0.0)
        b.insert_packet(shared, now=0.0, hop_count=1)
        ids = {p.packet_id for p in a.transferable_packets(b)}
        assert ids == {fresh.packet_id}
