"""The durational contact layer: windows, sessions, interruption, resume.

Deterministic semantics tests for the contact-session pipeline:

* :class:`~repro.mobility.schedule.Contact` windows and the pluggable
  :class:`~repro.mobility.schedule.LinkModel`;
* :class:`~repro.routing.base.LinkSession` time metering (streaming
  finish times, metadata consuming stream time, partial cuts);
* the simulator's ``contact_model`` semantics — creations landing during
  an open contact become transferable mid-contact, deliveries are
  timestamped at their streaming finish, interrupted transfers roll back
  or resume — plus the utilization / noise satellite fixes.
"""

from __future__ import annotations

import math

import pytest

from repro.dtn.node import DeploymentNoise
from repro.dtn.packet import Packet, PacketFactory
from repro.dtn.results import SimulationResult
from repro.dtn.simulator import Simulator, run_simulation
from repro.engine.spec import ScenarioSpec
from repro.exceptions import ConfigurationError
from repro.experiments.config import (
    ProtocolSpec,
    SyntheticExperimentConfig,
    TraceExperimentConfig,
)
from repro.mobility.schedule import (
    CONSTANT_RATE,
    ConstantRateLinkModel,
    Contact,
    LinkModel,
    Meeting,
    MeetingSchedule,
)
from repro.routing.base import LinkSession
from repro.routing.registry import create_factory


# ----------------------------------------------------------------------
# Contact windows and link models
# ----------------------------------------------------------------------
class TestContact:
    def test_meeting_is_contact(self):
        assert Meeting is Contact

    def test_window_properties(self):
        contact = Contact(time=10.0, node_a=0, node_b=1, capacity=6000.0, duration=30.0)
        assert contact.start == 10.0
        assert contact.end == 40.0
        assert contact.nominal_rate() == pytest.approx(200.0)
        assert contact.profile is CONSTANT_RATE

    def test_zero_duration_contact_is_a_point(self):
        contact = Contact(time=5.0, node_a=0, node_b=1, capacity=100.0)
        assert contact.end == contact.start
        assert math.isinf(contact.nominal_rate())

    def test_constant_rate_model_inverts(self):
        model = ConstantRateLinkModel()
        contact = Contact(time=0.0, node_a=0, node_b=1, capacity=1000.0, duration=10.0)
        assert model.bytes_within(contact, 4.0) == pytest.approx(400.0)
        assert model.time_to_transfer(contact, 400.0) == pytest.approx(4.0)
        assert model.bytes_within(contact, 100.0) == 1000.0  # clipped to capacity

    def test_custom_link_model_is_pluggable(self):
        class FrontLoaded(LinkModel):
            """All capacity in the first half of the window."""

            def bytes_within(self, contact, elapsed):
                half = contact.duration / 2.0
                return contact.capacity * min(1.0, max(0.0, elapsed) / half)

            def time_to_transfer(self, contact, cumulative_bytes):
                half = contact.duration / 2.0
                return half * min(1.0, cumulative_bytes / contact.capacity)

        contact = Contact(
            time=0.0, node_a=0, node_b=1, capacity=1000.0, duration=10.0,
            link_model=FrontLoaded(),
        )
        session = LinkSession(capacity=1000.0, contact=contact, opened_at=0.0, cutoff=10.0)
        sent, finish, completed = session.transmit(500.0, 0.0)
        assert completed and sent == 500.0
        assert finish == pytest.approx(2.5)  # half the front-loaded half-window

    def test_link_model_excluded_from_identity(self):
        base = Contact(time=1.0, node_a=0, node_b=1, capacity=10.0, duration=2.0)
        modelled = Contact(
            time=1.0, node_a=0, node_b=1, capacity=10.0, duration=2.0,
            link_model=ConstantRateLinkModel(),
        )
        assert base == modelled
        assert hash(base) == hash(modelled)


# ----------------------------------------------------------------------
# Link sessions
# ----------------------------------------------------------------------
def make_session(capacity=1000.0, start=0.0, duration=10.0, cutoff=None):
    contact = Contact(time=start, node_a=0, node_b=1, capacity=capacity, duration=duration)
    return LinkSession(
        capacity=capacity,
        contact=contact,
        opened_at=start,
        cutoff=contact.end if cutoff is None else cutoff,
        stream_clock=start,
    )


class TestLinkSession:
    def test_transfers_queue_on_the_stream(self):
        session = make_session()  # 100 B/s
        _, first_finish, _ = session.transmit(300.0, 0.0)
        _, second_finish, _ = session.transmit(200.0, 0.0)
        assert first_finish == pytest.approx(3.0)
        assert second_finish == pytest.approx(5.0)
        assert session.data_bytes == 500.0

    def test_idle_stream_starts_at_now(self):
        session = make_session()
        _, finish, _ = session.transmit(100.0, 4.0)
        assert finish == pytest.approx(5.0)

    def test_transfer_cut_at_cutoff_charges_partial(self):
        session = make_session(cutoff=5.0)  # only 500 B fit
        sent, finish, completed = session.transmit(800.0, 0.0)
        assert not completed
        assert sent == pytest.approx(500.0)
        assert finish == 5.0
        assert session.transfer_cut and session.exhausted
        assert session.sendable_bytes(0.0) == 0.0

    def test_metadata_consumes_stream_time(self):
        session = make_session()
        assert session.charge_metadata(200.0) == 200.0
        _, finish, _ = session.transmit(100.0, 0.0)
        assert finish == pytest.approx(3.0)  # 2 s metadata + 1 s data

    def test_metadata_clipped_by_window(self):
        session = make_session(cutoff=2.0)  # 200 B of window
        assert session.charge_metadata(500.0) == pytest.approx(200.0)
        assert session.charge_metadata(10.0) == 0.0

    def test_degenerate_session_is_pure_byte_budget(self):
        session = LinkSession(capacity=400.0)
        assert session.can_complete(400.0, now=0.0)
        assert not session.can_complete(401.0, now=0.0)
        sent, finish, completed = session.transmit(400.0, 7.0)
        assert completed and sent == 400.0 and finish == 7.0

    def test_metadata_capacity_narrows_to_the_window(self):
        """Whole-entry clipping (acks, control records) must agree with
        what charge_metadata can actually charge before the cutoff."""
        session = make_session(capacity=4_000.0, cutoff=0.4)  # 400 B/s, 160 B of window
        assert session.remaining == 4_000.0
        assert session.metadata_capacity() == pytest.approx(160.0)
        # An ack flood sized by metadata_capacity charges exactly what fits.
        assert session.charge_metadata(session.metadata_capacity()) == pytest.approx(160.0)
        assert session.metadata_capacity() == 0.0

    def test_acks_learned_only_when_their_bytes_fit_the_window(self):
        from repro import constants
        from repro.core.rapid import RapidProtocol
        from repro.dtn.node import Node
        from repro.routing.base import ProtocolContext

        nodes = {0: Node.with_capacity(0, float("inf")), 1: Node.with_capacity(1, float("inf"))}
        context = ProtocolContext(nodes=nodes)
        x = RapidProtocol(nodes[0], context, control_channel="none")
        y = RapidProtocol(nodes[1], context, control_channel="none")
        x.counts_control_bytes = True
        x.acked = set(range(50))
        entry = constants.RAPID_ACK_ENTRY_BYTES
        # Byte budget fits all 50 entries, the window only 3.
        session = make_session(capacity=50.0 * entry, duration=10.0, cutoff=10.0 * (3.0 * entry) / (50.0 * entry))
        x.send_acks(y, session)
        assert len(y.acked) == 3
        assert session.metadata_bytes == pytest.approx(3.0 * entry)


# ----------------------------------------------------------------------
# Simulator semantics per contact model
# ----------------------------------------------------------------------
def one_packet(source, destination, size, creation_time, factory=None):
    factory = factory or PacketFactory()
    return [factory.create(source=source, destination=destination, size=size, creation_time=creation_time)]


class TestDurationalSemantics:
    def test_creation_during_contact_transfers_mid_contact(self):
        # Window [10, 110] at 100 B/s; the packet appears at t=50, well
        # after the opening instant.
        schedule = MeetingSchedule(
            [Contact(time=10.0, node_a=0, node_b=1, capacity=10_000.0, duration=100.0)],
            duration=200.0,
        )
        packets = one_packet(0, 1, 2_000, 50.0)
        instantaneous = run_simulation(schedule, packets, create_factory("direct"))
        durational = run_simulation(
            schedule, packets, create_factory("direct"),
            options={"contact_model": "durational"},
        )
        assert instantaneous.num_delivered == 0  # missed the point event
        assert durational.num_delivered == 1
        record = durational.record_for(packets[0].packet_id)
        assert record.delivery_time == pytest.approx(70.0)  # 50 + 2000/100

    def test_delivery_timestamped_at_streaming_finish(self):
        schedule = MeetingSchedule(
            [Contact(time=100.0, node_a=0, node_b=1, capacity=20_000.0, duration=100.0)],
            duration=250.0,
        )
        packets = one_packet(0, 1, 2_000, 0.0)
        result = run_simulation(
            schedule, packets, create_factory("direct"),
            options={"contact_model": "durational"},
        )
        # 200 B/s: finish at 100 + 2000/200 = 110 (instantaneous: exactly 100).
        assert result.record_for(packets[0].packet_id).delivery_time == pytest.approx(110.0)

    def test_window_cut_rolls_back_and_wastes_partial_bytes(self):
        # Contact 1: [10, 20] at 300 B/s.  The packet appears at t=15, so
        # only 1500 B of window remain for its 2000 B — the transfer is
        # cut, rolled back, and completed from scratch at contact 2.
        factory = PacketFactory()
        schedule = MeetingSchedule(
            [
                Contact(time=10.0, node_a=0, node_b=1, capacity=3_000.0, duration=10.0),
                Contact(time=100.0, node_a=0, node_b=1, capacity=20_000.0, duration=100.0),
            ],
            duration=300.0,
        )
        packets = one_packet(0, 1, 2_000, 15.0, factory)
        result = run_simulation(
            schedule, packets, create_factory("direct"),
            options={"contact_model": "durational"},
        )
        assert result.transfers_interrupted == 1
        assert result.partial_bytes_wasted == pytest.approx(1_500.0)
        assert result.num_delivered == 1
        record = result.record_for(packets[0].packet_id)
        # Full 2000 B resent at 200 B/s from t=100.
        assert record.delivery_time == pytest.approx(110.0)
        assert result.data_bytes == pytest.approx(1_500.0 + 2_000.0)

    def test_resume_carries_partial_progress_to_next_contact(self):
        factory = PacketFactory()
        schedule = MeetingSchedule(
            [
                Contact(time=10.0, node_a=0, node_b=1, capacity=3_000.0, duration=10.0),
                Contact(time=100.0, node_a=0, node_b=1, capacity=20_000.0, duration=100.0),
            ],
            duration=300.0,
        )
        packets = one_packet(0, 1, 2_000, 15.0, factory)
        result = run_simulation(
            schedule, packets, create_factory("direct"),
            options={"contact_model": "durational", "contact_resume": True},
        )
        assert result.transfers_interrupted == 1
        assert result.transfers_resumed == 1
        assert result.partial_bytes_wasted == 0.0
        assert result.num_delivered == 1
        record = result.record_for(packets[0].packet_id)
        # Only the remaining 500 B stream at contact 2: 100 + 500/200.
        assert record.delivery_time == pytest.approx(102.5)
        assert result.data_bytes == pytest.approx(2_000.0)

    def test_zero_duration_windows_degenerate_to_instantaneous_outcome(self):
        # Synthetic mobility emits point contacts; the durational pipeline
        # must reproduce the instantaneous delivery/replication outcome.
        from repro.mobility.exponential import ExponentialMobility
        from repro.dtn.workload import PoissonWorkload

        schedule = ExponentialMobility(
            num_nodes=6, mean_inter_meeting=50.0, transfer_opportunity=50 * 1024, seed=13
        ).generate(400.0)
        packets = PoissonWorkload(packets_per_hour=40.0, seed=3).generate(range(6), 400.0)
        base = run_simulation(schedule, packets, create_factory("epidemic"), seed=1)
        durational = run_simulation(
            schedule, packets, create_factory("epidemic"), seed=1,
            options={"contact_model": "durational"},
        )
        assert durational.num_delivered == base.num_delivered
        assert durational.replications == base.replications
        assert durational.data_bytes == pytest.approx(base.data_bytes)


class TestInterruptibleSemantics:
    def _schedule(self):
        contacts = [
            Contact(time=10.0 * (i + 1), node_a=i % 3, node_b=(i + 1) % 3,
                    capacity=8_000.0, duration=8.0)
            for i in range(12)
        ]
        return MeetingSchedule(contacts, nodes=range(3), duration=200.0)

    def test_certain_interruption_cuts_every_contact(self):
        from repro.dtn.workload import PoissonWorkload

        packets = PoissonWorkload(packets_per_hour=100.0, seed=2).generate(range(3), 200.0)
        result = run_simulation(
            self._schedule(), packets, create_factory("epidemic"), seed=5,
            options={"contact_model": "interruptible", "contact_interrupt_probability": 1.0},
        )
        assert result.contacts_interrupted == result.meetings_processed > 0

    def test_zero_probability_matches_durational(self):
        from repro.dtn.workload import PoissonWorkload

        packets = PoissonWorkload(packets_per_hour=100.0, seed=2).generate(range(3), 200.0)
        durational = run_simulation(
            self._schedule(), packets, create_factory("epidemic"), seed=5,
            options={"contact_model": "durational"},
        )
        no_cuts = run_simulation(
            self._schedule(), packets, create_factory("epidemic"), seed=5,
            options={"contact_model": "interruptible", "contact_interrupt_probability": 0.0},
        )
        assert no_cuts.contacts_interrupted == 0
        assert no_cuts.num_delivered == durational.num_delivered
        assert no_cuts.data_bytes == pytest.approx(durational.data_bytes)

    def test_interruption_draws_are_reproducible(self):
        from repro.dtn.workload import PoissonWorkload

        packets = PoissonWorkload(packets_per_hour=100.0, seed=2).generate(range(3), 200.0)
        options = {"contact_model": "interruptible", "contact_interrupt_probability": 0.6}
        first = run_simulation(
            self._schedule(), packets, create_factory("epidemic"), seed=5, options=dict(options)
        )
        second = run_simulation(
            self._schedule(), packets, create_factory("epidemic"), seed=5, options=dict(options)
        )
        assert first.contacts_interrupted == second.contacts_interrupted
        assert first.to_dict() == second.to_dict()

    def test_unknown_contact_model_rejected(self):
        with pytest.raises(ConfigurationError):
            Simulator(
                MeetingSchedule([], nodes=[0, 1], duration=1.0),
                [],
                create_factory("direct"),
                options={"contact_model": "bogus"},
            )


# ----------------------------------------------------------------------
# Satellite fixes: utilization denominators and noise uniformity
# ----------------------------------------------------------------------
class TestUtilizationFix:
    def test_infinite_capacity_excluded_from_denominator(self):
        schedule = MeetingSchedule(
            [
                Meeting(time=10.0, node_a=0, node_b=1, capacity=float("inf")),
                Meeting(time=20.0, node_a=0, node_b=1, capacity=10_000.0),
            ],
            duration=30.0,
        )
        packets = one_packet(0, 1, 1_000, 0.0)
        result = run_simulation(schedule, packets, create_factory("direct"))
        assert result.infinite_capacity_contacts == 1
        assert result.total_capacity_bytes == 10_000.0
        # Delivered at the first (infinite) meeting; the finite meeting
        # carried nothing, so utilization is a true 10%-of-finite reading
        # only if bytes moved there — here the division is well defined.
        assert result.channel_utilization() is not None

    def test_all_infinite_capacity_reads_none(self):
        schedule = MeetingSchedule(
            [Meeting(time=10.0, node_a=0, node_b=1)], duration=20.0
        )
        packets = one_packet(0, 1, 1_000, 0.0)
        result = run_simulation(schedule, packets, create_factory("direct"))
        assert result.num_delivered == 1
        assert result.infinite_capacity_contacts == 1
        assert result.channel_utilization() is None
        assert result.metadata_fraction_of_bandwidth() is None
        assert math.isnan(result.summary()["channel_utilization"])

    def test_contact_counters_roundtrip_and_merge(self):
        result = SimulationResult(protocol_name="t", duration=10.0)
        result.infinite_capacity_contacts = 2
        result.contacts_interrupted = 3
        result.transfers_interrupted = 4
        result.transfers_resumed = 1
        result.partial_bytes_wasted = 123.5
        rebuilt = SimulationResult.from_dict(result.to_dict())
        assert rebuilt.infinite_capacity_contacts == 2
        assert rebuilt.contacts_interrupted == 3
        assert rebuilt.transfers_interrupted == 4
        assert rebuilt.transfers_resumed == 1
        assert rebuilt.partial_bytes_wasted == 123.5
        other = SimulationResult(protocol_name="t", duration=10.0)
        merged = SimulationResult.merge([rebuilt, other])
        assert merged.contacts_interrupted == 3
        assert merged.partial_bytes_wasted == 123.5

    def test_zero_counters_keep_wire_format_unchanged(self):
        result = SimulationResult(protocol_name="t", duration=10.0)
        assert "contact" not in result.to_dict()


class TestNoiseUniformity:
    def test_endpoint_less_meetings_see_miss_and_jitter(self):
        """Endpoint-less meetings must be missed / jittered like any other."""
        schedule = MeetingSchedule(
            [Meeting(time=10.0, node_a=0, node_b=1, capacity=10_000.0)], duration=20.0
        )
        noise = DeploymentNoise(
            capacity_jitter=0.0, meeting_miss_probability=0.999, processing_delay=0.0, seed=3
        )
        simulator = Simulator(
            schedule, one_packet(0, 1, 1_000, 0.0), create_factory("direct"), noise=noise
        )
        simulator._build_nodes()
        simulator.result = SimulationResult(protocol_name="t", duration=20.0)
        # A meeting between buses outside the protocol set: the miss draw
        # must apply before any capacity registration.
        simulator._handle_meeting(
            Meeting(time=5.0, node_a=7, node_b=8, capacity=10_000.0), now=5.0
        )
        assert simulator.result.meetings_missed == 1
        assert simulator.result.total_capacity_bytes == 0.0

    def test_endpoint_less_meetings_register_jittered_capacity(self):
        schedule = MeetingSchedule(
            [Meeting(time=10.0, node_a=0, node_b=1, capacity=10_000.0)], duration=20.0
        )
        noise = DeploymentNoise(
            capacity_jitter=0.5, meeting_miss_probability=0.0, processing_delay=0.0, seed=3
        )
        simulator = Simulator(
            schedule, one_packet(0, 1, 1_000, 0.0), create_factory("direct"), noise=noise
        )
        simulator._build_nodes()
        simulator.result = SimulationResult(protocol_name="t", duration=20.0)
        simulator._handle_meeting(
            Meeting(time=5.0, node_a=7, node_b=8, capacity=10_000.0), now=5.0
        )
        registered = simulator.result.total_capacity_bytes
        assert registered != 10_000.0  # jitter applied, not nominal capacity
        assert 5_000.0 <= registered <= 15_000.0


# ----------------------------------------------------------------------
# The engine-level contact_model axis
# ----------------------------------------------------------------------
class TestContactModelAxis:
    def test_spec_validates_contact_model(self):
        config = SyntheticExperimentConfig.ci_scale()
        with pytest.raises(ConfigurationError):
            ScenarioSpec.for_cell(
                config=config,
                protocol=ProtocolSpec(label="rapid", registry_name="rapid"),
                load=2.0,
                run_index=0,
                contact_model="sometimes",
            )

    def test_config_validates_contact_model(self):
        with pytest.raises(ConfigurationError):
            TraceExperimentConfig.ci_scale().with_contact_model("bogus")

    def test_config_contact_model_roundtrips(self):
        config = TraceExperimentConfig.ci_scale().with_contact_model("interruptible")
        rebuilt = TraceExperimentConfig.from_dict(config.to_dict())
        assert rebuilt.contact_model == "interruptible"

    def test_grid_contact_model_axis_expands_outermost(self):
        from repro.engine import ScenarioGrid

        config = SyntheticExperimentConfig.ci_scale()
        grid = ScenarioGrid(
            config=config,
            protocols=[ProtocolSpec(label="rapid", registry_name="rapid")],
            loads=(2.0,),
            run_indices=(0,),
            contact_models=("instantaneous", "interruptible"),
        )
        cells = grid.cells()
        assert len(grid) == len(cells) == 2
        assert [c.contact_model for c in cells] == ["instantaneous", "interruptible"]
        assert cells[0].cache_key() != cells[1].cache_key()

    def test_interruptible_trace_cell_runs_through_engine(self):
        from repro.engine import worker as cell_worker

        config = TraceExperimentConfig.ci_scale(seed=7, num_days=1)
        spec = ScenarioSpec.for_cell(
            config=config,
            protocol=ProtocolSpec(label="rapid", registry_name="rapid"),
            load=4.0,
            run_index=0,
            contact_model="interruptible",
            contact_options={"contact_interrupt_probability": 1.0, "contact_resume": True},
        )
        cell_worker.clear_input_caches()
        result = cell_worker.run_cell(spec)
        assert result.contacts_interrupted == result.meetings_processed > 0
        assert result.partial_bytes_wasted == 0.0

    def test_cli_sweep_interruptible_end_to_end(self, capsys):
        from repro.cli import main

        code = main([
            "sweep",
            "--family", "trace",
            "--protocols", "rapid,random",
            "--loads", "2",
            "--contact-model", "interruptible",
            "--metric", "contacts_interrupted",
        ])
        captured = capsys.readouterr()
        assert code == 0
        assert "contacts interrupted" in captured.err
        assert "rapid" in captured.out
