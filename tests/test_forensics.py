"""Tests for causal packet forensics.

The property tests run real simulations under hypothesis-drawn
parameters and check the forensic invariants that must hold for *every*
trace the simulator can produce:

* a delivered packet's winning path is **connected** (each hop starts
  where the previous ended), starts at the source and ends at the
  destination;
* the path is **time-monotone** (commit times never decrease, every
  latency stage is non-negative) and its stages sum to the end-to-end
  delay;
* the path length equals the ``hops`` count the delivery event carried
  (the replica's own hop counter — an independent witness);
* the delivery funnel **conserves**: every created packet lands in
  exactly one terminal class.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro import units
from repro.dtn.simulator import run_simulation
from repro.dtn.workload import PoissonWorkload
from repro.mobility.exponential import ExponentialMobility
from repro.observability import MemorySink
from repro.observability.forensics import (
    ForensicsError,
    causal_chain,
    decision_references,
    delivery_funnel,
    funnel_text,
    why_text,
)
from repro.routing.registry import create_factory


def _traced_run(seed, num_nodes, buffer_kb, protocol="rapid", duration=600.0):
    mobility = ExponentialMobility(
        num_nodes=num_nodes,
        mean_inter_meeting=40.0,
        transfer_opportunity=50 * units.KB,
        seed=seed,
    )
    schedule = mobility.generate(duration)
    workload = PoissonWorkload(packets_per_hour=120.0, seed=seed + 1)
    packets = workload.generate(list(range(num_nodes)), duration)
    sink = MemorySink()
    result = run_simulation(
        schedule,
        packets,
        create_factory(protocol),
        buffer_capacity=buffer_kb * units.KB,
        seed=seed,
        options={"trace_sink": sink},
    )
    return result, sink.events


# ----------------------------------------------------------------------
# Property tests over real simulations
# ----------------------------------------------------------------------
class TestForensicsInvariants:
    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        num_nodes=st.integers(min_value=3, max_value=8),
        buffer_kb=st.sampled_from([6, 10, 20, 100]),
        protocol=st.sampled_from(["rapid", "epidemic", "maxprop"]),
    )
    def test_winning_paths_are_connected_and_monotone(
        self, seed, num_nodes, buffer_kb, protocol
    ):
        result, events = _traced_run(seed, num_nodes, buffer_kb, protocol)
        delivered = {e["packet"] for e in events if e["ev"] == "packet_delivered"}
        for packet_id in delivered:
            chain = causal_chain(events, packet_id)
            assert chain["state"] == "delivered"
            path = chain["path"]
            assert path, "delivered packet has an empty path"
            created = chain["created"]
            # Connected: starts at the source, each hop chains onto the
            # previous, ends at the destination.
            assert path[0]["from"] == created["src"]
            assert path[-1]["to"] == created["dst"]
            for prev, nxt in zip(path, path[1:]):
                assert prev["to"] == nxt["from"]
            # Time-monotone with non-negative stages.
            times = [hop["committed_t"] for hop in path]
            assert times == sorted(times)
            assert times[0] >= float(created["t"])
            for hop in path:
                assert hop["waiting_s"] >= 0.0
                assert hop["queueing_s"] >= 0.0
                assert hop["transfer_s"] >= 0.0
            # The stages decompose exactly into the end-to-end delay.
            latency = chain["latency"]
            total = (
                latency["waiting_s"] + latency["queueing_s"] + latency["transfer_s"]
            )
            assert total == pytest.approx(chain["delay_s"])
            # Path length agrees with the delivery event's hop counter.
            hops = chain["delivery"]["hops"]
            if hops is not None:
                assert len(path) == hops

    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        num_nodes=st.integers(min_value=3, max_value=8),
        buffer_kb=st.sampled_from([6, 10, 20]),
        protocol=st.sampled_from(["rapid", "epidemic", "prophet"]),
    )
    def test_funnel_conserves(self, seed, num_nodes, buffer_kb, protocol):
        _, events = _traced_run(seed, num_nodes, buffer_kb, protocol)
        funnel = delivery_funnel(events)
        total = (
            funnel["delivered"]
            + funnel["expired"]
            + funnel["refused"]
            + funnel["evicted"]
            + funnel["in_flight"]
        )
        assert total == funnel["created"]
        # The classes are disjoint packet sets covering every creation.
        classes = [
            set(funnel[f"{name}_packets"])
            for name in ("delivered", "expired", "refused", "evicted", "in_flight")
        ]
        union = set().union(*classes)
        assert len(union) == funnel["created"]
        assert sum(len(c) for c in classes) == len(union)
        # Every evicted-everywhere packet has its evicting back-references.
        for packet_id in funnel["evicted_packets"]:
            assert funnel["eviction_refs"][packet_id]

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_funnel_agrees_with_result_counters(self, seed):
        result, events = _traced_run(seed, num_nodes=6, buffer_kb=10)
        funnel = delivery_funnel(events)
        assert funnel["created"] == result.num_packets
        assert funnel["delivered"] == result.num_delivered


# ----------------------------------------------------------------------
# Deterministic unit tests on handcrafted traces
# ----------------------------------------------------------------------
def _event(t, ev, **fields):
    return {"t": t, "ev": ev, **fields}


def _delivered_trace():
    """0 creates for 3; 0->1 at 10, 1->2 at 20, 2 delivers to 3 at 30."""
    return [
        _event(0.0, "packet_created", packet=7, src=0, dst=3, size=100,
               deadline=100.0, stored=True),
        _event(8.0, "contact_open", a=0, b=1, capacity=None),
        _event(10.0, "packet_replicated", packet=7, **{"from": 0, "to": 1},
               size=100),
        _event(19.0, "contact_open", a=1, b=2, capacity=None),
        _event(19.5, "transfer_start", packet=7, **{"from": 1, "to": 2},
               bytes=100),
        _event(20.0, "packet_replicated", packet=7, **{"from": 1, "to": 2},
               size=100),
        _event(25.0, "packet_evicted", packet=7, node=1),
        _event(30.0, "packet_delivered", packet=7, **{"from": 2, "to": 3},
               hops=3),
    ]


class TestCausalChain:
    def test_reconstructs_path_and_decomposition(self):
        chain = causal_chain(_delivered_trace(), 7)
        assert chain["state"] == "delivered"
        assert [(h["from"], h["to"]) for h in chain["path"]] == [
            (0, 1), (1, 2), (2, 3),
        ]
        assert chain["delay_s"] == pytest.approx(30.0)
        hop0, hop1, hop2 = chain["path"]
        # Hop 0: created at 0, contact opened at 8, committed at 10 (no
        # transfer_start -> queueing absorbs the open..commit gap).
        assert hop0["waiting_s"] == pytest.approx(8.0)
        assert hop0["queueing_s"] == pytest.approx(2.0)
        assert hop0["transfer_s"] == pytest.approx(0.0)
        # Hop 1 has a transfer_start at 19.5: queue 0.5, stream 0.5.
        assert hop1["waiting_s"] == pytest.approx(9.0)
        assert hop1["queueing_s"] == pytest.approx(0.5)
        assert hop1["transfer_s"] == pytest.approx(0.5)
        # Hop 2: no contact event -> pure waiting.
        assert hop2["waiting_s"] == pytest.approx(10.0)
        assert chain["replicas_committed"] == 2
        assert chain["evictions"] == [{"t": 25.0, "node": 1}]

    def test_undelivered_states(self):
        events = [
            _event(0.0, "packet_created", packet=1, src=0, dst=3, size=10,
                   deadline=50.0, stored=True),
            _event(50.0, "packet_expired", packet=1, deadline=50.0),
            _event(0.0, "packet_created", packet=2, src=0, dst=3, size=10,
                   deadline=None, stored=True),
            _event(5.0, "packet_evicted", packet=2, node=0),
            _event(0.0, "packet_created", packet=3, src=0, dst=3, size=10,
                   deadline=None, stored=True),
            _event(0.0, "packet_created", packet=4, src=0, dst=3, size=10,
                   deadline=None, stored=False),
        ]
        assert causal_chain(events, 1)["state"] == "expired"
        assert causal_chain(events, 2)["state"] == "evicted"
        assert causal_chain(events, 3)["state"] == "in_flight"
        assert causal_chain(events, 4)["state"] == "refused_at_source"

    def test_unknown_packet_raises(self):
        with pytest.raises(ForensicsError, match="no events"):
            causal_chain(_delivered_trace(), 999)

    def test_why_text_renders(self):
        text = why_text(_delivered_trace(), 7)
        assert "winning path: 0 -> 1 -> 2 -> 3" in text
        assert "latency decomposition" in text

    def test_why_text_with_decisions(self):
        decisions = [
            _event(10.0, "replication_rank", node=0, peer=1, protocol="rapid",
                   candidates=[7], score=[0.5]),
            _event(25.0, "eviction_choice", node=1, protocol="rapid",
                   incoming=9, candidates=[7], score=[0.1], victim=7,
                   reason="lowest_score"),
        ]
        text = why_text(_delivered_trace(), 7, decisions=decisions)
        assert "decision audit" in text
        assert "victim (lowest_score)" in text
        assert "score=0.5" in text

    def test_decision_references_filters_and_sorts(self):
        decisions = [
            _event(30.0, "replication_rank", node=0, peer=1, protocol="rapid",
                   candidates=[7], score=[0.5]),
            _event(10.0, "eviction_choice", node=1, protocol="rapid",
                   incoming=9, candidates=[8], score=[0.1], victim=8,
                   reason="lowest_score"),
            _event(20.0, "eviction_choice", node=2, protocol="rapid",
                   incoming=9, candidates=[7, 8], score=[0.1, 0.2], victim=7,
                   reason="lowest_score"),
        ]
        refs = decision_references(decisions, 7)
        assert [e["t"] for e in refs] == [20.0, 30.0]

    def test_funnel_text_renders(self):
        text = funnel_text(_delivered_trace())
        assert "delivered" in text and "(100.0%)" in text
        assert funnel_text([]) == "no packets in trace"

    def test_latency_handles_instantaneous_contacts(self):
        # No contact/transfer events at all: everything is waiting time.
        events = [
            _event(0.0, "packet_created", packet=1, src=0, dst=2, size=10,
                   deadline=None, stored=True),
            _event(4.0, "packet_replicated", packet=1, **{"from": 0, "to": 1},
                   size=10),
            _event(9.0, "packet_delivered", packet=1, **{"from": 1, "to": 2},
                   hops=2),
        ]
        chain = causal_chain(events, 1)
        latency = chain["latency"]
        assert latency["waiting_s"] == pytest.approx(9.0)
        assert latency["queueing_s"] == 0.0
        assert latency["transfer_s"] == 0.0
