"""Tests for the parallel experiment engine.

Covers the declarative scenario layer (specs, grids, content addresses),
result serialization round-trips, serial vs. multiprocess equivalence,
the on-disk result cache (hit/miss/invalidation/corruption recovery),
aggregation, the deterministic event-queue ordering the engine's
bit-identical guarantee rests on, and the CLI engine flags.
"""

import json

import pytest

from repro import units
from repro.dtn.events import (
    EndOfSimulationEvent,
    EventKind,
    MeetingEvent,
    PacketCreationEvent,
)
from repro.dtn.node import DeploymentNoise
from repro.dtn.packet import Packet
from repro.dtn.results import SimulationResult
from repro.dtn.scheduler import EventQueue
from repro.engine import (
    Aggregator,
    ExperimentEngine,
    Executor,
    ResultCache,
    ScenarioGrid,
    ScenarioSpec,
    get_default_engine,
    use_engine,
)
from repro.engine import worker as cell_worker
from repro.exceptions import ConfigurationError
from repro.experiments.config import (
    ProtocolSpec,
    SyntheticExperimentConfig,
    TraceExperimentConfig,
)
from repro.experiments.runner import SyntheticRunner, TraceRunner, sweep
from repro.mobility.schedule import Meeting


@pytest.fixture(scope="module")
def tiny_synth_config():
    return SyntheticExperimentConfig(
        num_nodes=6,
        mean_inter_meeting=40.0,
        transfer_opportunity=50 * units.KB,
        duration=3 * units.MINUTE,
        buffer_capacity=20 * units.KB,
        deadline=30.0,
        packet_interval=50.0,
        mobility="powerlaw",
        num_runs=2,
        seed=5,
    )


@pytest.fixture(scope="module")
def tiny_grid(tiny_synth_config):
    return ScenarioGrid(
        config=tiny_synth_config,
        protocols=[
            ProtocolSpec("Random", "random"),
            ProtocolSpec("Spray and Wait", "spray-and-wait"),
        ],
        loads=(2.0, 5.0),
    )


def run_tiny_simulation():
    from repro.mobility.exponential import ExponentialMobility
    from repro.dtn.workload import PoissonWorkload
    from repro.routing.registry import create_factory
    from repro.dtn.simulator import run_simulation

    schedule = ExponentialMobility(num_nodes=5, mean_inter_meeting=20.0, seed=1).generate(120.0)
    packets = PoissonWorkload(packets_per_hour=200.0, deadline=40.0, seed=2).generate(
        list(range(5)), 120.0
    )
    return run_simulation(
        schedule, packets, create_factory("random"), buffer_capacity=30 * units.KB, seed=3
    )


class TestResultSerialization:
    def test_round_trip_preserves_every_metric(self):
        result = run_tiny_simulation()
        payload = json.loads(json.dumps(result.to_dict()))
        restored = SimulationResult.from_dict(payload)
        assert restored.summary() == result.summary()
        assert restored.delays(include_undelivered=True) == result.delays(include_undelivered=True)
        assert set(restored.records) == set(result.records)
        some_id = next(iter(result.records))
        assert restored.records[some_id].packet == result.records[some_id].packet
        assert restored.node_counters == result.node_counters

    def test_incompatible_schema_rejected(self):
        result = run_tiny_simulation()
        payload = result.to_dict()
        payload["schema"] = 999
        with pytest.raises(ValueError, match="schema"):
            SimulationResult.from_dict(payload)


class TestScenarioSpec:
    def test_round_trip_and_rehydration(self, tiny_synth_config):
        spec = ScenarioSpec.for_cell(
            config=tiny_synth_config,
            protocol=ProtocolSpec("Rapid", "rapid", {"metric": "average_delay"}),
            load=4.0,
            run_index=1,
            noise=DeploymentNoise(seed=9),
        )
        restored = ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert restored == spec
        assert restored.experiment_config() == tiny_synth_config
        assert restored.protocol_spec().registry_name == "rapid"
        assert restored.deployment_noise() == DeploymentNoise(seed=9)

    def test_trace_config_round_trip(self):
        config = TraceExperimentConfig.ci_scale(num_days=2)
        spec = ScenarioSpec.for_cell(config, ProtocolSpec("Random", "random"), 2.0, 0)
        assert spec.family == "trace"
        assert spec.experiment_config() == config

    def test_cache_key_stable_and_content_addressed(self, tiny_synth_config):
        protocol = ProtocolSpec("Random", "random")
        a = ScenarioSpec.for_cell(tiny_synth_config, protocol, 4.0, 0)
        b = ScenarioSpec.for_cell(tiny_synth_config, protocol, 4.0, 0)
        assert a.cache_key() == b.cache_key()
        assert a.cache_key() != ScenarioSpec.for_cell(tiny_synth_config, protocol, 5.0, 0).cache_key()
        assert a.cache_key() != ScenarioSpec.for_cell(tiny_synth_config, protocol, 4.0, 1).cache_key()
        reconfigured = SyntheticExperimentConfig.from_dict(
            {**tiny_synth_config.to_dict(), "seed": 6}
        )
        assert a.cache_key() != ScenarioSpec.for_cell(reconfigured, protocol, 4.0, 0).cache_key()
        retuned = ProtocolSpec("Random", "random", {"metric": "max_delay"})
        assert a.cache_key() != ScenarioSpec.for_cell(tiny_synth_config, retuned, 4.0, 0).cache_key()

    def test_validation(self, tiny_synth_config):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(family="bogus", config={}, protocol={}, load=1.0, run_index=0)
        with pytest.raises(ConfigurationError):
            ScenarioSpec.for_cell(tiny_synth_config, ProtocolSpec("R", "random"), 0.0, 0)


class TestScenarioGrid:
    def test_expansion_order_and_size(self, tiny_grid):
        cells = tiny_grid.cells()
        assert len(cells) == len(tiny_grid) == 2 * 2 * 2
        # loads outer, then protocols, then run indices
        assert [ (c.load, c.label, c.run_index) for c in cells[:4] ] == [
            (2.0, "Random", 0),
            (2.0, "Random", 1),
            (2.0, "Spray and Wait", 0),
            (2.0, "Spray and Wait", 1),
        ]

    def test_trace_grid_defaults_to_days(self):
        grid = ScenarioGrid(
            config=TraceExperimentConfig.ci_scale(num_days=3),
            protocols=[ProtocolSpec("Random", "random")],
            loads=(2.0,),
        )
        assert [c.run_index for c in grid.cells()] == [0, 1, 2]

    def test_empty_grid_rejected(self, tiny_synth_config):
        with pytest.raises(ConfigurationError):
            ScenarioGrid(config=tiny_synth_config, protocols=[], loads=(1.0,))


class TestExecutorBackends:
    def test_serial_and_process_results_identical(self, tiny_grid):
        cells = tiny_grid.cells()
        serial = Executor(workers=1).run(cells)
        parallel = Executor(workers=2).run(cells)
        assert [r.summary() for r in serial] == [r.summary() for r in parallel]
        assert [r.protocol_name for r in serial] == [c.protocol_spec().factory().name for c in cells]

    def test_progress_callback_ordered(self, tiny_grid):
        cells = tiny_grid.cells()[:3]
        seen = []
        Executor(workers=1).run(cells, progress=lambda done, total, spec: seen.append((done, total)))
        assert seen == [(1, 3), (2, 3), (3, 3)]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Executor(workers=0)
        with pytest.raises(ConfigurationError):
            Executor(backend="gpu")
        assert Executor(workers=1).run([]) == []


class TestEngineEquivalenceAndSweep:
    def test_engine_sweep_series_matches_runner_sweep(self, tiny_grid, tiny_synth_config):
        engine_series = ExperimentEngine(workers=1).sweep_series(tiny_grid, "delivery_rate")
        runner = SyntheticRunner(tiny_synth_config)
        runner_series = sweep(
            runner,
            list(tiny_grid.protocols),
            list(tiny_grid.loads),
            "delivery_rate",
        )
        assert engine_series == runner_series

    def test_serial_vs_multiprocess_sweep_identical(self, tiny_grid):
        serial = ExperimentEngine(workers=1).sweep_series(tiny_grid, "average_delay")
        parallel = ExperimentEngine(workers=2).sweep_series(tiny_grid, "average_delay")
        assert serial == parallel

    def test_uniform_runner_interface(self, tiny_synth_config):
        trace_runner = TraceRunner(TraceExperimentConfig.ci_scale(num_days=1))
        synth_runner = SyntheticRunner(tiny_synth_config)
        assert trace_runner.load_keyword == "load_packets_per_hour"
        assert synth_runner.load_keyword == "packets_per_interval"
        # trace cells resolve the config's default load; synthetic demands one
        cells = trace_runner.cells(ProtocolSpec("Random", "random"))
        assert all(c.load == trace_runner.config.load_packets_per_hour for c in cells)
        with pytest.raises(ConfigurationError):
            synth_runner.cells(ProtocolSpec("Random", "random"))

    def test_default_engine_context(self):
        special = ExperimentEngine(workers=1)
        with use_engine(special) as active:
            assert get_default_engine() is special is active
        assert get_default_engine() is not special


class TestResultCache:
    def test_hit_miss_and_stats(self, tmp_path, tiny_grid):
        cache = ResultCache(tmp_path / "cache")
        cells = tiny_grid.cells()[:2]
        assert cache.get(cells[0]) is None
        results = Executor(workers=1).run(cells)
        for spec, result in zip(cells, results):
            cache.put(spec, result)
        assert len(cache) == 2
        hit = cache.get(cells[0])
        assert hit is not None and hit.summary() == results[0].summary()
        assert cache.stats.hits == 1 and cache.stats.misses == 1 and cache.stats.stores == 2

    def test_spec_change_invalidates(self, tmp_path, tiny_synth_config):
        cache = ResultCache(tmp_path / "cache")
        base = ScenarioSpec.for_cell(tiny_synth_config, ProtocolSpec("Random", "random"), 2.0, 0)
        cache.put(base, cell_worker.run_cell(base))
        assert cache.get(base) is not None
        changed = ScenarioSpec.for_cell(
            tiny_synth_config, ProtocolSpec("Random", "random"), 2.0, 0, buffer_capacity=5 * units.KB
        )
        assert cache.get(changed) is None

    def test_corrupted_entry_recovers(self, tmp_path, tiny_synth_config):
        cache_dir = tmp_path / "cache"
        spec = ScenarioSpec.for_cell(tiny_synth_config, ProtocolSpec("Random", "random"), 2.0, 0)
        engine = ExperimentEngine(workers=1, cache_dir=cache_dir)
        first = engine.run_cells([spec])
        entry = engine.cache.entry_path(spec)
        assert entry.exists()
        entry.write_text("{ not json", encoding="utf-8")
        healed = ExperimentEngine(workers=1, cache_dir=cache_dir)
        second = healed.run_cells([spec])
        assert second[0].summary() == first[0].summary()
        assert healed.cache.stats.corrupt_entries == 1
        assert healed.stats.cells_executed == 1  # re-simulated, then re-stored
        third = ExperimentEngine(workers=1, cache_dir=cache_dir).run_cells([spec])
        assert third[0].summary() == first[0].summary()

    def test_warm_cache_serves_without_simulator(self, tmp_path, tiny_grid, monkeypatch):
        cache_dir = tmp_path / "cache"
        cells = tiny_grid.cells()
        warm = ExperimentEngine(workers=1, cache_dir=cache_dir)
        originals = warm.run_cells(cells)
        assert warm.stats.cells_executed == len(cells)

        def _forbidden(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("simulator must not be called on a warm cache")

        monkeypatch.setattr(cell_worker, "run_simulation", _forbidden)
        replay = ExperimentEngine(workers=1, cache_dir=cache_dir)
        replayed = replay.run_cells(cells)
        assert replay.stats.cache_hits == len(cells)
        assert replay.stats.cells_executed == 0
        assert [r.summary() for r in replayed] == [r.summary() for r in originals]


class TestAggregator:
    def test_groups_and_averages_by_label_and_load(self, tiny_grid):
        cells = tiny_grid.cells()
        results = Executor(workers=1).run(cells)
        series = Aggregator("delivery_rate").series(cells, results)
        assert set(series) == {"Random", "Spray and Wait"}
        assert all(len(values) == len(tiny_grid.loads) for values in series.values())
        # spot-check one mean against a manual reduction
        manual = [
            r.delivery_rate()
            for c, r in zip(cells, results)
            if c.label == "Random" and c.load == 2.0
        ]
        assert series["Random"][0] == pytest.approx(sum(manual) / len(manual))

    def test_mismatched_lengths_rejected(self, tiny_grid):
        with pytest.raises(ValueError):
            Aggregator("delivery_rate").series(tiny_grid.cells(), [])

    def test_unknown_group_rejected(self, tiny_grid):
        cells = tiny_grid.cells()
        results = Executor(workers=1).run(cells)
        with pytest.raises(KeyError):
            Aggregator("delivery_rate").series(cells, results, labels=["Nope"])


class TestEventQueueOrdering:
    def test_kind_priority_at_equal_time(self):
        meeting = Meeting(time=5.0, node_a=0, node_b=1, capacity=1000.0)
        packet = Packet(packet_id=0, source=0, destination=1, creation_time=5.0)
        queue = EventQueue()
        queue.push(EndOfSimulationEvent(time=5.0))
        queue.push(MeetingEvent(time=5.0, meeting=meeting))
        queue.push(PacketCreationEvent(time=5.0, packet=packet))
        kinds = [event.kind for event in queue.drain()]
        assert kinds == [EventKind.PACKET_CREATION, EventKind.MEETING, EventKind.END_OF_SIMULATION]

    def test_insertion_order_breaks_remaining_ties(self):
        first = Meeting(time=5.0, node_a=0, node_b=1, capacity=1.0)
        second = Meeting(time=5.0, node_a=2, node_b=3, capacity=2.0)
        queue = EventQueue()
        queue.push_all([MeetingEvent(time=5.0, meeting=first), MeetingEvent(time=5.0, meeting=second)])
        drained = queue.drain()
        assert [e.meeting for e in drained] == [first, second]

    def test_time_dominates(self):
        meeting = Meeting(time=1.0, node_a=0, node_b=1)
        queue = EventQueue([EndOfSimulationEvent(time=2.0), MeetingEvent(time=1.0, meeting=meeting)])
        assert queue.peek_time() == 1.0
        assert isinstance(queue.pop(), MeetingEvent)


class TestCLIEngineFlags:
    def test_run_with_workers_and_cache(self, tmp_path, capsys):
        from repro.cli import main

        cache_dir = str(tmp_path / "cli-cache")
        assert main(["run", "figure4", "--cache-dir", cache_dir]) == 0
        first = capsys.readouterr()
        assert main(["run", "figure4", "--cache-dir", cache_dir, "--workers", "2"]) == 0
        second = capsys.readouterr()
        assert first.out == second.out
        assert "cache hits: 0" in first.err
        assert "executed: 0" in second.err

    def test_sweep_subcommand(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "sweep", "--family", "synthetic", "--protocols", "random",
                    "--loads", "2", "--metric", "delivery_rate",
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "random" in captured.out
        assert "[engine]" in captured.err
