"""Tests for meeting schedules and mobility models."""

import math

import pytest

from repro.exceptions import ScheduleError
from repro.mobility.exponential import ExponentialMobility
from repro.mobility.powerlaw import PowerLawMobility
from repro.mobility.schedule import Meeting, MeetingSchedule, ScheduleStatistics
from repro.mobility.trace import TraceMobility


class TestMeeting:
    def test_validation(self):
        with pytest.raises(ScheduleError):
            Meeting(time=-1.0, node_a=0, node_b=1)
        with pytest.raises(ScheduleError):
            Meeting(time=1.0, node_a=2, node_b=2)
        with pytest.raises(ScheduleError):
            Meeting(time=1.0, node_a=0, node_b=1, capacity=-5)

    def test_peer_of(self):
        meeting = Meeting(time=1.0, node_a=3, node_b=7)
        assert meeting.peer_of(3) == 7
        assert meeting.peer_of(7) == 3
        with pytest.raises(ScheduleError):
            meeting.peer_of(9)

    def test_pair_is_sorted(self):
        assert Meeting(time=0.0, node_a=9, node_b=2).pair() == (2, 9)


class TestMeetingSchedule:
    def test_sorted_by_time(self):
        meetings = [
            Meeting(time=30.0, node_a=0, node_b=1),
            Meeting(time=10.0, node_a=1, node_b=2),
        ]
        schedule = MeetingSchedule(meetings)
        assert [m.time for m in schedule] == [10.0, 30.0]

    def test_nodes_include_explicit_and_meeting_nodes(self):
        schedule = MeetingSchedule([Meeting(time=1.0, node_a=0, node_b=1)], nodes=[5])
        assert schedule.nodes == [0, 1, 5]

    def test_duration_defaults_to_last_meeting(self):
        schedule = MeetingSchedule([Meeting(time=42.0, node_a=0, node_b=1)])
        assert schedule.duration == 42.0

    def test_duration_shorter_than_meetings_rejected(self):
        with pytest.raises(ScheduleError):
            MeetingSchedule([Meeting(time=42.0, node_a=0, node_b=1)], duration=10.0)

    def test_meetings_between(self, tiny_schedule):
        window = tiny_schedule.meetings_between(15.0, 45.0)
        assert [m.time for m in window] == [20.0, 30.0, 40.0]

    def test_meetings_of_node_and_pair(self, tiny_schedule):
        assert len(tiny_schedule.meetings_of(0)) == 3
        assert len(tiny_schedule.meetings_of_pair(0, 1)) == 2
        assert len(tiny_schedule.meetings_of_pair(1, 0)) == 2

    def test_capacity_statistics(self, tiny_schedule):
        assert tiny_schedule.total_capacity() == 5 * 10 * 1024
        assert tiny_schedule.mean_capacity() == 10 * 1024

    def test_mean_inter_meeting_times(self, tiny_schedule):
        means = tiny_schedule.mean_inter_meeting_times()
        assert means[(0, 1)] == 40.0
        assert (1, 2) not in means  # only one meeting, no interval

    def test_restricted_and_truncated(self, tiny_schedule):
        restricted = tiny_schedule.restricted_to([0, 1])
        assert all(m.pair() == (0, 1) for m in restricted)
        truncated = tiny_schedule.truncated(25.0)
        assert len(truncated) == 2
        assert truncated.duration == 25.0

    def test_merged_with(self, tiny_schedule):
        other = MeetingSchedule([Meeting(time=5.0, node_a=7, node_b=8)], duration=100.0)
        merged = tiny_schedule.merged_with(other)
        assert len(merged) == len(tiny_schedule) + 1
        assert merged.duration == 100.0
        assert 7 in merged.nodes

    def test_from_tuples(self):
        schedule = MeetingSchedule.from_tuples([(1.0, 0, 1, 500.0), (2.0, 1, 2, 600.0)])
        assert len(schedule) == 2
        assert schedule[0].capacity == 500.0

    def test_statistics(self, tiny_schedule):
        stats = ScheduleStatistics.of(tiny_schedule)
        assert stats.num_nodes == 4
        assert stats.num_meetings == 5
        assert stats.meetings_per_node == pytest.approx(2.5)


class TestExponentialMobility:
    def test_validation(self):
        with pytest.raises(ValueError):
            ExponentialMobility(num_nodes=1)
        with pytest.raises(ValueError):
            ExponentialMobility(num_nodes=5, mean_inter_meeting=0)
        with pytest.raises(ValueError):
            ExponentialMobility(num_nodes=5, capacity_jitter=1.5)

    def test_generation_is_reproducible(self):
        a = ExponentialMobility(num_nodes=6, mean_inter_meeting=30.0, seed=3).generate(300.0)
        b = ExponentialMobility(num_nodes=6, mean_inter_meeting=30.0, seed=3).generate(300.0)
        assert len(a) == len(b)
        assert [m.time for m in a] == [m.time for m in b]

    def test_meeting_count_matches_rate(self):
        mean = 50.0
        duration = 5000.0
        model = ExponentialMobility(num_nodes=6, mean_inter_meeting=mean, seed=1)
        schedule = model.generate(duration)
        pairs = 6 * 5 / 2
        expected = pairs * duration / mean
        assert expected * 0.7 < len(schedule) < expected * 1.3

    def test_expected_pair_rate(self):
        model = ExponentialMobility(num_nodes=4, mean_inter_meeting=25.0)
        assert model.expected_pair_rate(0, 1) == pytest.approx(1 / 25.0)

    def test_capacity_jitter_bounds(self):
        model = ExponentialMobility(
            num_nodes=4, mean_inter_meeting=10.0, transfer_opportunity=1000, capacity_jitter=0.2, seed=9
        )
        schedule = model.generate(200.0)
        assert all(800 <= m.capacity <= 1200 for m in schedule)


class TestPowerLawMobility:
    def test_popularity_permutation_required(self):
        with pytest.raises(ValueError):
            PowerLawMobility(num_nodes=4, popularity=[1, 1, 2, 3])

    def test_popular_pairs_meet_more_often(self):
        popularity = list(range(1, 11))
        model = PowerLawMobility(
            num_nodes=10, mean_inter_meeting=60.0, exponent=1.0, popularity=popularity, seed=2
        )
        # Node 0 has rank 1 (most popular), node 9 has rank 10 (least).
        assert model.pair_mean(0, 1) < model.pair_mean(8, 9)

    def test_mean_is_normalised(self):
        model = PowerLawMobility(num_nodes=8, mean_inter_meeting=100.0, seed=4)
        means = [
            model.pair_mean(a, b)
            for a in range(8)
            for b in range(a + 1, 8)
        ]
        assert sum(means) / len(means) == pytest.approx(100.0, rel=1e-6)

    def test_generation_runs(self):
        model = PowerLawMobility(num_nodes=6, mean_inter_meeting=40.0, seed=5)
        schedule = model.generate(300.0)
        assert len(schedule) > 0


class TestTraceMobility:
    def test_wraps_schedule(self, tiny_schedule):
        mobility = TraceMobility(tiny_schedule)
        assert mobility.generate(60.0) is tiny_schedule
        shorter = mobility.generate(25.0)
        assert len(shorter) == 2

    def test_expected_pair_rate(self, tiny_schedule):
        mobility = TraceMobility(tiny_schedule)
        rate = mobility.expected_pair_rate(0, 1)
        assert rate == pytest.approx(2 / 60.0)
        assert mobility.expected_pair_rate(0, 2) == 0.0

    def test_rejects_bad_duration(self, tiny_schedule):
        with pytest.raises(ValueError):
            TraceMobility(tiny_schedule).generate(0)
