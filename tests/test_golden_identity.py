"""Golden bit-identity: the incremental fast path vs. the reference mode.

The incremental delay-estimation engine (per-destination serve-order
index, per-meeting estimate scratch, vectorised delay math, lazy-heap
ranking, cascade-scoped eviction-score caching) is a pure optimisation:
setting ``REPRO_SLOW_ESTIMATES=1`` selects the original O(buffer)
reference computations, and both must produce **byte-identical**
``SimulationResult.to_dict()`` output.  These tests pin that down for
one RAPID trace cell and one buffer-constrained synthetic cell, exactly
as ``benchmarks/bench_rapid_hotpath.py`` does at larger scale.
"""

from __future__ import annotations

import json
import os

import pytest

from repro import units
from repro.engine.spec import ScenarioSpec
from repro.engine import worker as cell_worker
from repro.experiments.config import (
    ProtocolSpec,
    SyntheticExperimentConfig,
    TraceExperimentConfig,
)
from repro.profiling import ENV_SLOW_ESTIMATES


def _canonical(payload) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@pytest.fixture()
def slow_mode_toggle():
    """Yield a runner that executes a callable with/without the slow mode."""
    previous = os.environ.pop(ENV_SLOW_ESTIMATES, None)

    def run(fn, slow: bool):
        os.environ.pop(ENV_SLOW_ESTIMATES, None)
        if slow:
            os.environ[ENV_SLOW_ESTIMATES] = "1"
        try:
            return fn()
        finally:
            os.environ.pop(ENV_SLOW_ESTIMATES, None)

    yield run
    if previous is not None:
        os.environ[ENV_SLOW_ESTIMATES] = previous


def _run_cell(spec: ScenarioSpec):
    cell_worker.clear_input_caches()
    return cell_worker.run_cell(spec).to_dict()


def test_rapid_trace_cell_bit_identical(slow_mode_toggle):
    config = TraceExperimentConfig.ci_scale(seed=7, num_days=1)
    spec = ScenarioSpec.for_cell(
        config=config,
        protocol=ProtocolSpec(label="rapid", registry_name="rapid"),
        load=4.0,
        run_index=0,
    )
    fast = slow_mode_toggle(lambda: _run_cell(spec), slow=False)
    slow = slow_mode_toggle(lambda: _run_cell(spec), slow=True)
    assert _canonical(fast) == _canonical(slow)


def test_rapid_synthetic_cell_bit_identical(slow_mode_toggle):
    # Small buffers force eviction cascades, exercising the cascade-scoped
    # eviction-score cache against the rescore-every-step reference.
    config = SyntheticExperimentConfig(
        num_nodes=8,
        mean_inter_meeting=70.0,
        transfer_opportunity=100 * units.KB,
        duration=4 * units.MINUTE,
        buffer_capacity=30 * units.KB,
        deadline=25.0,
        packet_interval=50.0,
        mobility="exponential",
        num_runs=1,
        seed=11,
    )
    spec = ScenarioSpec.for_cell(
        config=config,
        protocol=ProtocolSpec(label="rapid", registry_name="rapid"),
        load=8.0,
        run_index=0,
    )
    fast = slow_mode_toggle(lambda: _run_cell(spec), slow=False)
    slow = slow_mode_toggle(lambda: _run_cell(spec), slow=True)
    assert _canonical(fast) == _canonical(slow)


def test_max_delay_metric_ranking_bit_identical(slow_mode_toggle):
    """The lazy heap must reproduce the eager order for every metric family."""
    config = SyntheticExperimentConfig(
        num_nodes=6,
        mean_inter_meeting=60.0,
        transfer_opportunity=60 * units.KB,
        duration=3 * units.MINUTE,
        buffer_capacity=25 * units.KB,
        deadline=25.0,
        packet_interval=50.0,
        mobility="exponential",
        num_runs=1,
        seed=19,
    )
    spec = ScenarioSpec.for_cell(
        config=config,
        protocol=ProtocolSpec(
            label="rapid", registry_name="rapid", options={"metric": "max_delay"}
        ),
        load=8.0,
        run_index=0,
    )
    fast = slow_mode_toggle(lambda: _run_cell(spec), slow=False)
    slow = slow_mode_toggle(lambda: _run_cell(spec), slow=True)
    assert _canonical(fast) == _canonical(slow)
