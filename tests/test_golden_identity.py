"""Golden bit-identity: the incremental fast path vs. the reference mode.

The incremental delay-estimation engine (per-destination serve-order
index, per-meeting estimate scratch, vectorised delay math, lazy-heap
ranking, cascade-scoped eviction-score caching) is a pure optimisation:
setting ``REPRO_SLOW_ESTIMATES=1`` selects the original O(buffer)
reference computations, and both must produce **byte-identical**
``SimulationResult.to_dict()`` output.  These tests pin that down for
one RAPID trace cell and one buffer-constrained synthetic cell, exactly
as ``benchmarks/bench_rapid_hotpath.py`` does at larger scale.
"""

from __future__ import annotations

import json
import os

import pytest

from repro import units
from repro.engine.spec import ScenarioSpec
from repro.engine import worker as cell_worker
from repro.experiments.config import (
    ProtocolSpec,
    SyntheticExperimentConfig,
    TraceExperimentConfig,
)
from repro.profiling import ENV_SLOW_ESTIMATES


def _canonical(payload) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@pytest.fixture()
def slow_mode_toggle():
    """Yield a runner that executes a callable with/without the slow mode."""
    previous = os.environ.pop(ENV_SLOW_ESTIMATES, None)

    def run(fn, slow: bool):
        os.environ.pop(ENV_SLOW_ESTIMATES, None)
        if slow:
            os.environ[ENV_SLOW_ESTIMATES] = "1"
        try:
            return fn()
        finally:
            os.environ.pop(ENV_SLOW_ESTIMATES, None)

    yield run
    if previous is not None:
        os.environ[ENV_SLOW_ESTIMATES] = previous


def _run_cell(spec: ScenarioSpec):
    cell_worker.clear_input_caches()
    return cell_worker.run_cell(spec).to_dict()


def test_rapid_trace_cell_bit_identical(slow_mode_toggle):
    config = TraceExperimentConfig.ci_scale(seed=7, num_days=1)
    spec = ScenarioSpec.for_cell(
        config=config,
        protocol=ProtocolSpec(label="rapid", registry_name="rapid"),
        load=4.0,
        run_index=0,
    )
    fast = slow_mode_toggle(lambda: _run_cell(spec), slow=False)
    slow = slow_mode_toggle(lambda: _run_cell(spec), slow=True)
    assert _canonical(fast) == _canonical(slow)


def test_rapid_synthetic_cell_bit_identical(slow_mode_toggle):
    # Small buffers force eviction cascades, exercising the cascade-scoped
    # eviction-score cache against the rescore-every-step reference.
    config = SyntheticExperimentConfig(
        num_nodes=8,
        mean_inter_meeting=70.0,
        transfer_opportunity=100 * units.KB,
        duration=4 * units.MINUTE,
        buffer_capacity=30 * units.KB,
        deadline=25.0,
        packet_interval=50.0,
        mobility="exponential",
        num_runs=1,
        seed=11,
    )
    spec = ScenarioSpec.for_cell(
        config=config,
        protocol=ProtocolSpec(label="rapid", registry_name="rapid"),
        load=8.0,
        run_index=0,
    )
    fast = slow_mode_toggle(lambda: _run_cell(spec), slow=False)
    slow = slow_mode_toggle(lambda: _run_cell(spec), slow=True)
    assert _canonical(fast) == _canonical(slow)


class TestContactLayerGoldenIdentity:
    """The durational contact layer must not perturb the default mode.

    The default ``instantaneous`` contact model and an *explicit*
    ``contact_model="instantaneous"`` spec must both produce the exact
    pre-contact-layer output, for rapid, maxprop and prophet, across the
    serial, parallel and cached engine backends.
    """

    PROTOCOLS = ("rapid", "maxprop", "prophet")

    def _grid(self, contact_models=None):
        from repro.engine import ScenarioGrid

        config = SyntheticExperimentConfig(
            num_nodes=8,
            mean_inter_meeting=70.0,
            transfer_opportunity=100 * units.KB,
            duration=4 * units.MINUTE,
            buffer_capacity=40 * units.KB,
            deadline=25.0,
            packet_interval=50.0,
            mobility="exponential",
            num_runs=1,
            seed=11,
        )
        protocols = [
            ProtocolSpec(label=name, registry_name=name) for name in self.PROTOCOLS
        ]
        return ScenarioGrid(
            config=config, protocols=protocols, loads=(6.0,), contact_models=contact_models
        )

    def test_explicit_instantaneous_matches_default(self):
        """Spelling the default out must not change a single byte."""
        from repro.engine import ExperimentEngine

        with ExperimentEngine(workers=1) as engine:
            default = [r.to_dict() for r in engine.run_grid(self._grid())]
            explicit = [
                r.to_dict() for r in engine.run_grid(self._grid(("instantaneous",)))
            ]
        assert _canonical(default) == _canonical(explicit)

    def test_instantaneous_identical_across_backends(self, tmp_path):
        """Serial, parallel and cold/warm-cache backends agree byte for byte."""
        from repro.engine import ExperimentEngine

        grid = self._grid(("instantaneous",))
        with ExperimentEngine(workers=1) as engine:
            serial = _canonical([r.to_dict() for r in engine.run_grid(grid)])
        with ExperimentEngine(workers=2) as engine:
            parallel = _canonical([r.to_dict() for r in engine.run_grid(grid)])
        cache_dir = tmp_path / "cache"
        with ExperimentEngine(workers=1, cache_dir=cache_dir) as engine:
            cold = _canonical([r.to_dict() for r in engine.run_grid(grid)])
        with ExperimentEngine(workers=1, cache_dir=cache_dir) as engine:
            warm = _canonical([r.to_dict() for r in engine.run_grid(grid)])
            assert engine.stats.cache_hits == len(grid)
        assert parallel == serial
        assert cold == serial
        assert warm == serial

    def test_trace_cell_default_matches_explicit_instantaneous(self):
        """The DieselNet family: real contact windows exist in the schedule,
        but the default mode must still ignore them entirely."""
        config = TraceExperimentConfig.ci_scale(seed=7, num_days=1)
        protocol = ProtocolSpec(label="rapid", registry_name="rapid")
        default = _run_cell(
            ScenarioSpec.for_cell(config=config, protocol=protocol, load=4.0, run_index=0)
        )
        explicit = _run_cell(
            ScenarioSpec.for_cell(
                config=config,
                protocol=protocol,
                load=4.0,
                run_index=0,
                contact_model="instantaneous",
            )
        )
        assert _canonical(default) == _canonical(explicit)


def test_max_delay_metric_ranking_bit_identical(slow_mode_toggle):
    """The lazy heap must reproduce the eager order for every metric family."""
    config = SyntheticExperimentConfig(
        num_nodes=6,
        mean_inter_meeting=60.0,
        transfer_opportunity=60 * units.KB,
        duration=3 * units.MINUTE,
        buffer_capacity=25 * units.KB,
        deadline=25.0,
        packet_interval=50.0,
        mobility="exponential",
        num_runs=1,
        seed=19,
    )
    spec = ScenarioSpec.for_cell(
        config=config,
        protocol=ProtocolSpec(
            label="rapid", registry_name="rapid", options={"metric": "max_delay"}
        ),
        load=8.0,
        run_index=0,
    )
    fast = slow_mode_toggle(lambda: _run_cell(spec), slow=False)
    slow = slow_mode_toggle(lambda: _run_cell(spec), slow=True)
    assert _canonical(fast) == _canonical(slow)
