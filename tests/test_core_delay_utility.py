"""Tests for Estimate Delay, the utility metrics and the DAG estimator."""

import math

import pytest

from repro.core import dag_delay, delay
from repro.core.utility import (
    AverageDelayMetric,
    DeadlineMetric,
    MaximumDelayMetric,
    available_metrics,
    make_metric,
)
from repro.dtn.packet import Packet
from repro.exceptions import ConfigurationError


class TestDelayPrimitives:
    def test_meetings_needed_minimum_one(self):
        assert delay.meetings_needed(0, 1000, 100_000) == 1

    def test_meetings_needed_ceiling(self):
        # 2.5 opportunities needed -> 3 meetings.
        assert delay.meetings_needed(1500, 1000, 1000) == 3

    def test_meetings_needed_invalid_packet_size(self):
        with pytest.raises(ValueError):
            delay.meetings_needed(0, 0, 1000)

    def test_direct_delivery_delay(self):
        value = delay.direct_delivery_delay(100.0, 1500, 1000, 1000)
        assert value == pytest.approx(300.0)

    def test_direct_delivery_delay_never_meet(self):
        assert math.isinf(delay.direct_delivery_delay(float("inf"), 0, 1000, 1000))

    def test_combined_remaining_delay_single(self):
        assert delay.combined_remaining_delay([120.0]) == pytest.approx(120.0)

    def test_combined_remaining_delay_matches_uniform_closed_form(self):
        # k identical replicas: A = mean / k (Section 4.1.1).
        mean = 300.0
        for k in (1, 2, 5):
            combined = delay.combined_remaining_delay([mean] * k)
            assert combined == pytest.approx(delay.uniform_exponential_remaining_delay(mean, k))

    def test_combined_ignores_unreachable_replicas(self):
        assert delay.combined_remaining_delay([float("inf"), 100.0]) == pytest.approx(100.0)
        assert math.isinf(delay.combined_remaining_delay([float("inf")]))
        assert math.isinf(delay.combined_remaining_delay([]))

    def test_delivery_probability(self):
        p = delay.delivery_probability_within([100.0], 100.0)
        assert p == pytest.approx(1 - math.exp(-1))
        assert delay.delivery_probability_within([100.0], 0.0) == 0.0
        assert delay.delivery_probability_within([float("inf")], 50.0) == 0.0

    def test_probability_increases_with_replicas(self):
        window = 60.0
        one = delay.delivery_probability_within([100.0], window)
        two = delay.delivery_probability_within([100.0, 100.0], window)
        assert two > one

    def test_extra_replica_reduces_delay(self):
        before = delay.combined_remaining_delay([200.0])
        after = delay.expected_delay_with_extra_replica([200.0], 200.0)
        assert after == pytest.approx(before / 2)

    def test_uniform_closed_form_validation(self):
        with pytest.raises(ValueError):
            delay.uniform_exponential_remaining_delay(0, 1)
        with pytest.raises(ValueError):
            delay.uniform_exponential_remaining_delay(10.0, 0)


class TestMetricFactory:
    def test_available(self):
        assert set(available_metrics()) == {"average_delay", "deadline", "max_delay"}

    def test_aliases(self):
        assert isinstance(make_metric("avg_delay"), AverageDelayMetric)
        assert isinstance(make_metric("max-delay"), MaximumDelayMetric)
        assert isinstance(make_metric("missed_deadlines"), DeadlineMetric)

    def test_unknown_metric(self):
        with pytest.raises(ConfigurationError):
            make_metric("throughput")


class TestAverageDelayMetric:
    metric = AverageDelayMetric()

    def _packet(self, age=100.0, size=1000, deadline=None):
        return Packet(packet_id=1, source=0, destination=9, size=size, creation_time=0.0, deadline=deadline)

    def test_utility_is_negative_expected_delay(self):
        packet = self._packet()
        assert self.metric.utility(packet, 200.0, now=100.0) == pytest.approx(-300.0)

    def test_marginal_utility_positive_for_helpful_replica(self):
        packet = self._packet()
        gain = self.metric.marginal_utility(packet, [200.0], 200.0, now=100.0)
        assert gain == pytest.approx(100.0)

    def test_marginal_utility_zero_for_useless_replica(self):
        packet = self._packet()
        assert self.metric.marginal_utility(packet, [200.0], float("inf"), now=100.0) == 0.0

    def test_marginal_utility_for_newly_reachable_packet(self):
        packet = self._packet()
        gain = self.metric.marginal_utility(packet, [float("inf")], 500.0, now=100.0)
        assert 0 < gain < 1  # large-but-finite improvements rank below real reductions

    def test_replication_priority_normalises_by_size(self):
        small = Packet(packet_id=1, source=0, destination=9, size=500)
        large = Packet(packet_id=2, source=0, destination=9, size=2000)
        assert self.metric.replication_priority(small, 100.0, 0.0) > self.metric.replication_priority(
            large, 100.0, 0.0
        )

    def test_direct_delivery_oldest_first(self):
        old = Packet(packet_id=1, source=0, destination=9, creation_time=0.0)
        new = Packet(packet_id=2, source=0, destination=9, creation_time=50.0)
        assert self.metric.direct_delivery_key(old, 100.0) > self.metric.direct_delivery_key(new, 100.0)

    def test_horizon_clipping(self):
        metric = AverageDelayMetric()
        metric.set_horizon(1000.0)
        packet = self._packet()
        # Both before and after exceed the remaining time -> no realisable gain.
        gain = metric.marginal_utility(packet, [5000.0], 5000.0, now=500.0)
        assert gain == 0.0
        # A reduction that crosses the horizon is partially realisable.
        gain = metric.marginal_utility(packet, [5000.0], 100.0, now=500.0)
        assert gain > 0


class TestDeadlineMetric:
    def test_utility_probability_within_deadline(self):
        metric = DeadlineMetric()
        packet = Packet(packet_id=1, source=0, destination=9, creation_time=0.0, deadline=100.0)
        utility = metric.utility(packet, 50.0, now=0.0)
        assert utility == pytest.approx(1 - math.exp(-2))

    def test_expired_packet_has_zero_utility(self):
        metric = DeadlineMetric()
        packet = Packet(packet_id=1, source=0, destination=9, creation_time=0.0, deadline=10.0)
        assert metric.utility(packet, 5.0, now=50.0) == 0.0
        assert metric.marginal_utility(packet, [100.0], 10.0, now=50.0) == 0.0

    def test_default_deadline_used_when_packet_has_none(self):
        metric = DeadlineMetric(default_deadline=100.0)
        packet = Packet(packet_id=1, source=0, destination=9, creation_time=0.0)
        assert 0 < metric.utility(packet, 50.0, now=0.0) < 1

    def test_no_deadline_at_all(self):
        metric = DeadlineMetric()
        packet = Packet(packet_id=1, source=0, destination=9)
        assert metric.utility(packet, 50.0, now=0.0) == 1.0
        assert metric.utility(packet, float("inf"), now=0.0) == 0.0

    def test_marginal_utility_is_probability_gain(self):
        metric = DeadlineMetric()
        packet = Packet(packet_id=1, source=0, destination=9, creation_time=0.0, deadline=100.0)
        gain = metric.marginal_utility(packet, [200.0], 200.0, now=0.0)
        expected = (1 - math.exp(-1.0)) - (1 - math.exp(-0.5))
        assert gain == pytest.approx(expected)

    def test_direct_delivery_prefers_tight_feasible_deadlines(self):
        metric = DeadlineMetric()
        tight = Packet(packet_id=1, source=0, destination=9, creation_time=0.0, deadline=20.0)
        loose = Packet(packet_id=2, source=0, destination=9, creation_time=0.0, deadline=200.0)
        expired = Packet(packet_id=3, source=0, destination=9, creation_time=0.0, deadline=5.0)
        now = 10.0
        keys = {
            "tight": metric.direct_delivery_key(tight, now),
            "loose": metric.direct_delivery_key(loose, now),
            "expired": metric.direct_delivery_key(expired, now),
        }
        assert keys["tight"] > keys["loose"] > keys["expired"]


class TestMaximumDelayMetric:
    def test_eviction_prefers_smallest_expected_delay(self):
        metric = MaximumDelayMetric()
        young = Packet(packet_id=1, source=0, destination=9, creation_time=90.0)
        old = Packet(packet_id=2, source=0, destination=9, creation_time=0.0)
        now = 100.0
        assert metric.eviction_score(young, 10.0, now) < metric.eviction_score(old, 10.0, now)

    def test_expected_delay(self):
        metric = MaximumDelayMetric()
        packet = Packet(packet_id=1, source=0, destination=9, creation_time=0.0)
        assert metric.expected_delay(packet, 50.0, now=100.0) == pytest.approx(150.0)


class TestDagDelay:
    def test_dependency_graph_structure(self):
        # Figure 2: W holds [a, b], X holds [b, d], Y holds [a, d, c].
        queues = {"W": ["a", "b"], "X": ["b", "d"], "Y": ["a", "d", "c"]}
        graph = dag_delay.build_dependency_graph(queues)
        # b at W depends on a at W and on a's replica at Y.
        assert set(graph[("W", "b")]) == {("W", "a"), ("Y", "a")}
        # Front-of-queue replicas have no dependencies.
        assert graph[("W", "a")] == []
        assert graph[("X", "b")] == []

    def test_single_replica_front_packet_matches_mean(self):
        queues = {0: ["p"]}
        means = {0: 100.0}
        estimates = dag_delay.dag_delay_estimates(queues, means, num_samples=4000, seed=1)
        assert estimates["p"] == pytest.approx(100.0, rel=0.1)

    def test_two_replica_packet_beats_single(self):
        single = dag_delay.dag_delay_estimates({0: ["p"]}, {0: 100.0, 1: 100.0}, num_samples=3000, seed=2)
        double = dag_delay.dag_delay_estimates({0: ["p"], 1: ["p"]}, {0: 100.0, 1: 100.0}, num_samples=3000, seed=2)
        assert double["p"] < single["p"]

    def test_estimate_delay_baseline_positions(self):
        queues = {0: ["a", "b"]}
        means = {0: 100.0}
        baseline = dag_delay.estimate_delay_baseline(queues, means)
        assert baseline["a"] == pytest.approx(100.0)
        assert baseline["b"] == pytest.approx(200.0)

    def test_estimate_delay_ignores_cross_buffer_dependencies(self):
        # Estimate Delay treats b's two replicas as independent even though
        # both wait behind a replica of a; DAG delay accounts for the race.
        queues = {0: ["a", "b"], 1: ["a", "b"]}
        means = {0: 100.0, 1: 100.0}
        baseline = dag_delay.estimate_delay_baseline(queues, means)
        idealized = dag_delay.dag_delay_estimates(queues, means, num_samples=4000, seed=3)
        assert baseline["b"] == pytest.approx(100.0)  # min of two 200s-mean exponentials
        assert idealized["b"] > baseline["b"] * 0.9  # the DAG value is not smaller

    def test_unreachable_holder_gives_infinite_delay(self):
        estimates = dag_delay.dag_delay_estimates({0: ["p"]}, {}, num_samples=10, seed=4)
        assert math.isinf(estimates["p"])

    def test_estimation_gap(self):
        queues = {0: ["a", "b"], 1: ["b"]}
        means = {0: 100.0, 1: 150.0}
        gaps = dag_delay.estimation_gap(queues, means, num_samples=1500, seed=5)
        assert set(gaps) == {"a", "b"}
        assert gaps["a"] == pytest.approx(1.0, rel=0.2)

    def test_invalid_samples(self):
        with pytest.raises(ValueError):
            dag_delay.dag_delay_estimates({0: ["p"]}, {0: 1.0}, num_samples=0)
