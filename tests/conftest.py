"""Shared fixtures for the test suite.

All fixtures are deliberately tiny: the unit tests exercise behaviour and
invariants, not paper-scale performance (the benchmark harness does that).
"""

from __future__ import annotations

import pytest

from repro.dtn.packet import Packet, PacketFactory
from repro.dtn.workload import PoissonWorkload
from repro.mobility.exponential import ExponentialMobility
from repro.mobility.schedule import Meeting, MeetingSchedule


@pytest.fixture
def packet_factory() -> PacketFactory:
    return PacketFactory()


@pytest.fixture
def small_packet(packet_factory) -> Packet:
    return packet_factory.create(source=0, destination=1, size=1024, creation_time=0.0)


@pytest.fixture
def tiny_schedule() -> MeetingSchedule:
    """A hand-written 4-node schedule with a relay path 0 -> 1 -> 2."""
    meetings = [
        Meeting(time=10.0, node_a=0, node_b=1, capacity=10 * 1024),
        Meeting(time=20.0, node_a=1, node_b=2, capacity=10 * 1024),
        Meeting(time=30.0, node_a=0, node_b=3, capacity=10 * 1024),
        Meeting(time=40.0, node_a=3, node_b=2, capacity=10 * 1024),
        Meeting(time=50.0, node_a=0, node_b=1, capacity=10 * 1024),
    ]
    return MeetingSchedule(meetings, nodes=range(4), duration=60.0)


@pytest.fixture
def exponential_schedule() -> MeetingSchedule:
    """A small random schedule: 8 nodes, 10 minutes."""
    mobility = ExponentialMobility(
        num_nodes=8, mean_inter_meeting=60.0, transfer_opportunity=50 * 1024, seed=42
    )
    return mobility.generate(600.0)


@pytest.fixture
def small_workload(exponential_schedule) -> list:
    """A workload matched to the exponential_schedule fixture."""
    workload = PoissonWorkload(packets_per_hour=20.0, seed=7, deadline=120.0)
    return workload.generate(range(8), 600.0)
