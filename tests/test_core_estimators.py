"""Tests for the meeting-time estimator, transfer-size estimator and metadata store."""

import math

import pytest

from repro import constants
from repro.core.meeting_estimator import MeetingTimeEstimator
from repro.core.metadata import MetadataStore, PacketMetadata, ReplicaInfo
from repro.core.transfer_estimator import TransferSizeEstimator
from repro.dtn.packet import Packet, PacketFactory


class TestMeetingTimeEstimator:
    def test_first_meeting_uses_elapsed_time(self):
        estimator = MeetingTimeEstimator(node_id=0)
        estimator.record_meeting(1, now=120.0)
        assert estimator.direct_mean(1) == pytest.approx(120.0)

    def test_average_of_gaps(self):
        estimator = MeetingTimeEstimator(node_id=0)
        estimator.record_meeting(1, now=100.0)
        estimator.record_meeting(1, now=200.0)
        estimator.record_meeting(1, now=260.0)
        # Gaps of 100 and 60 averaged with the initial estimate of 100.
        assert estimator.direct_mean(1) == pytest.approx((100.0 + 100.0 + 60.0) / 3)

    def test_expected_meeting_time_direct(self):
        estimator = MeetingTimeEstimator(node_id=0)
        estimator.record_meeting(1, now=50.0)
        assert estimator.expected_meeting_time(1) == pytest.approx(50.0)
        assert estimator.expected_meeting_time(0) == 0.0

    def test_unknown_destination_is_never_met(self):
        estimator = MeetingTimeEstimator(node_id=0)
        assert estimator.expected_meeting_time(9) == constants.NEVER_MEET

    def test_multi_hop_path(self):
        estimator = MeetingTimeEstimator(node_id=0, max_hops=3)
        estimator.record_meeting(1, now=100.0)
        estimator.merge_table(1, {2: 40.0})
        # 0 -> 1 (100) -> 2 (40).
        assert estimator.expected_meeting_time(2) == pytest.approx(140.0)

    def test_hop_limit_enforced(self):
        estimator = MeetingTimeEstimator(node_id=0, max_hops=2)
        estimator.record_meeting(1, now=10.0)
        estimator.merge_table(1, {2: 10.0})
        estimator.merge_table(2, {3: 10.0})
        estimator.merge_table(3, {4: 10.0})
        assert not math.isinf(estimator.expected_meeting_time(2))
        # Node 4 needs 4 hops (0-1-2-3-4) which exceeds max_hops=2... node 3
        # needs 3 hops and must already be unreachable.
        assert math.isinf(estimator.expected_meeting_time(4))
        assert math.isinf(estimator.expected_meeting_time(3))

    def test_merge_from_peer(self):
        a = MeetingTimeEstimator(node_id=0)
        b = MeetingTimeEstimator(node_id=1)
        a.record_meeting(1, now=30.0)
        b.record_meeting(5, now=20.0)
        a.merge_from(b)
        assert a.expected_meeting_time(5) == pytest.approx(50.0)

    def test_version_bumps_on_change(self):
        estimator = MeetingTimeEstimator(node_id=0)
        v0 = estimator.version
        estimator.record_meeting(1, now=10.0)
        assert estimator.version > v0
        v1 = estimator.version
        estimator.merge_table(1, {2: 5.0})
        assert estimator.version > v1
        # Merging an identical table does not bump the version.
        v2 = estimator.version
        estimator.merge_table(1, {2: 5.0})
        assert estimator.version == v2

    def test_own_table_copy(self):
        estimator = MeetingTimeEstimator(node_id=0)
        estimator.record_meeting(1, now=10.0)
        table = estimator.own_table()
        table[1] = 999.0
        assert estimator.direct_mean(1) != 999.0

    def test_invalid_hops(self):
        with pytest.raises(ValueError):
            MeetingTimeEstimator(node_id=0, max_hops=0)


class TestTransferSizeEstimator:
    def test_first_observation(self):
        estimator = TransferSizeEstimator()
        estimator.record(1, 1000.0)
        assert estimator.expected_bytes(1) == pytest.approx(1000.0)
        assert estimator.observations == 1

    def test_moving_average(self):
        estimator = TransferSizeEstimator(smoothing=0.5)
        estimator.record(1, 1000.0)
        estimator.record(1, 2000.0)
        assert estimator.expected_bytes(1) == pytest.approx(1500.0)

    def test_global_fallback(self):
        estimator = TransferSizeEstimator()
        estimator.record(1, 800.0)
        assert estimator.expected_bytes(7) == pytest.approx(800.0)

    def test_default_when_empty(self):
        estimator = TransferSizeEstimator()
        assert estimator.expected_bytes(3, default=123.0) == 123.0

    def test_ignores_non_positive_sizes(self):
        estimator = TransferSizeEstimator()
        estimator.record(1, 0.0)
        assert estimator.observations == 0

    def test_merge_snapshot_only_fills_gaps(self):
        a = TransferSizeEstimator()
        a.record(1, 500.0)
        b = TransferSizeEstimator()
        b.record(1, 9999.0)
        b.record(2, 700.0)
        a.merge_snapshot(b.snapshot())
        assert a.expected_bytes(1) == pytest.approx(500.0)
        assert a.expected_bytes(2) == pytest.approx(700.0)

    def test_invalid_smoothing(self):
        with pytest.raises(ValueError):
            TransferSizeEstimator(smoothing=0.0)


class TestMetadataStore:
    def _packet(self, pid=1):
        return Packet(packet_id=pid, source=0, destination=9, size=1000)

    def test_update_and_query(self):
        store = MetadataStore()
        packet = self._packet()
        assert store.update_replica(packet, holder_id=3, delay_estimate=100.0, now=10.0)
        entry = store.get(packet.packet_id)
        assert entry.replica_count() == 1
        assert entry.holders() == [3]
        assert entry.delay_estimates() == [100.0]
        assert packet.packet_id in store
        assert len(store) == 1

    def test_small_drift_is_not_a_change(self):
        store = MetadataStore()
        packet = self._packet()
        store.update_replica(packet, 3, 100.0, now=10.0)
        assert not store.update_replica(packet, 3, 101.0, now=20.0, tolerance=0.25)
        # The stored value is still refreshed.
        assert store.get(packet.packet_id).replicas[3].delay_estimate == 101.0

    def test_large_drift_is_a_change(self):
        store = MetadataStore()
        packet = self._packet()
        store.update_replica(packet, 3, 100.0, now=10.0)
        assert store.update_replica(packet, 3, 300.0, now=20.0, tolerance=0.25)

    def test_stale_information_rejected(self):
        store = MetadataStore()
        packet = self._packet()
        store.update_replica(packet, 3, 100.0, now=50.0)
        assert not store.update_replica(packet, 3, 999.0, now=10.0)
        assert store.get(packet.packet_id).replicas[3].delay_estimate == 100.0

    def test_entries_changed_since(self):
        store = MetadataStore()
        early, late = self._packet(1), self._packet(2)
        store.update_replica(early, 3, 100.0, now=10.0)
        store.update_replica(late, 4, 100.0, now=50.0)
        changed = store.entries_changed_since(20.0)
        assert [entry.packet_id for entry in changed] == [2]

    def test_remove_replica_and_packet(self):
        store = MetadataStore()
        packet = self._packet()
        store.update_replica(packet, 3, 100.0, now=10.0)
        store.update_replica(packet, 4, 200.0, now=10.0)
        store.remove_replica(packet.packet_id, 3, now=20.0)
        assert store.get(packet.packet_id).holders() == [4]
        store.remove_packet(packet.packet_id)
        assert store.get(packet.packet_id) is None

    def test_merge_entry_learned_at(self):
        store = MetadataStore()
        packet = self._packet()
        remote = PacketMetadata(packet=packet)
        remote.replicas[7] = ReplicaInfo(node_id=7, delay_estimate=42.0, updated_at=5.0, changed_at=5.0)
        assert store.merge_entry(remote, now=30.0)
        info = store.get(packet.packet_id).replicas[7]
        assert info.updated_at == 5.0
        assert info.changed_at == 30.0  # local learning time drives re-flooding

    def test_total_replica_entries(self):
        store = MetadataStore()
        store.update_replica(self._packet(1), 3, 1.0, now=1.0)
        store.update_replica(self._packet(1), 4, 1.0, now=1.0)
        store.update_replica(self._packet(2), 3, 1.0, now=1.0)
        assert store.total_replica_entries() == 3
