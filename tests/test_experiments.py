"""Tests for the experiment harness: configs, runners, reports and figures.

Figure functions are exercised at a deliberately tiny scale — the goal is
to validate the harness plumbing (series structure, labels, metric wiring),
not to reproduce the paper's numbers, which is the benchmark suite's job.
"""

import pytest

from repro import units
from repro.exceptions import ConfigurationError
from repro.experiments import EXPERIMENT_INDEX
from repro.experiments.config import (
    ProtocolSpec,
    SyntheticExperimentConfig,
    TraceExperimentConfig,
    component_protocols,
    global_channel_protocols,
    standard_protocols,
)
from repro.experiments.report import FigureResult, Series, TableResult, percentage_improvement
from repro.experiments.runner import SyntheticRunner, TraceRunner, sweep
from repro.traces.dieselnet import DieselNetParameters


@pytest.fixture(scope="module")
def tiny_trace_config():
    parameters = DieselNetParameters(
        num_buses=8,
        avg_buses_per_day=6,
        day_duration=0.5 * units.HOUR,
        avg_meetings_per_day=25,
        avg_bytes_per_day=25 * 60 * units.KB,
        num_routes=2,
    )
    return TraceExperimentConfig(
        trace_parameters=parameters,
        num_days=1,
        deadline=0.15 * 0.5 * units.HOUR,
        seed=3,
        metadata_byte_scale=0.05,
    )


@pytest.fixture(scope="module")
def tiny_synthetic_config():
    return SyntheticExperimentConfig(
        num_nodes=6,
        mean_inter_meeting=40.0,
        transfer_opportunity=50 * units.KB,
        duration=3 * units.MINUTE,
        buffer_capacity=20 * units.KB,
        deadline=30.0,
        packet_interval=50.0,
        mobility="powerlaw",
        num_runs=1,
        seed=5,
    )


class TestReport:
    def test_series_validation_and_lookup(self):
        series = Series(label="a", x=[1, 2], y=[10, 20])
        assert series.y_at(2) == 20
        with pytest.raises(KeyError):
            series.y_at(3)
        with pytest.raises(ValueError):
            Series(label="bad", x=[1], y=[1, 2])

    def test_figure_result_text(self):
        figure = FigureResult("Figure X", "demo", "load", "delay")
        figure.add_series("rapid", [1, 2], [10.0, 20.0])
        figure.add_series("random", [1, 2], [15.0, 30.0])
        text = figure.to_text()
        assert "Figure X" in text and "rapid" in text and "random" in text
        assert figure.get("rapid").y_at(1) == 10.0
        with pytest.raises(KeyError):
            figure.get("missing")

    def test_table_result_text(self):
        table = TableResult("Table Y", "demo")
        table.add_row("delivery", 0.88, "%")
        assert table.get("delivery") == 0.88
        assert "delivery" in table.to_text()

    def test_percentage_improvement(self):
        assert percentage_improvement(80.0, 100.0) == pytest.approx(20.0)
        assert percentage_improvement(1.0, 0.0) == 0.0


class TestConfigs:
    def test_protocol_spec_factory_and_options(self):
        spec = ProtocolSpec("Rapid", "rapid", {"metric": "max_delay"})
        factory = spec.factory()
        assert "max_delay" in factory.name
        updated = spec.with_options(metric="deadline")
        assert updated.options["metric"] == "deadline"

    def test_standard_protocol_sets(self):
        assert [s.label for s in standard_protocols()] == [
            "Rapid", "MaxProp", "Spray and Wait", "Random",
        ]
        assert len(component_protocols()) == 4
        assert len(global_channel_protocols()) == 2

    def test_trace_config_validation(self):
        with pytest.raises(ConfigurationError):
            TraceExperimentConfig(num_days=0)
        with pytest.raises(ConfigurationError):
            TraceExperimentConfig(load_packets_per_hour=0)

    def test_trace_config_scales(self):
        paper = TraceExperimentConfig.paper_scale()
        ci = TraceExperimentConfig.ci_scale()
        assert paper.trace_parameters.num_buses > ci.trace_parameters.num_buses
        assert ci.metadata_byte_scale < 1.0
        assert ci.with_load(9.0).load_packets_per_hour == 9.0

    def test_synthetic_config_validation_and_conversion(self):
        with pytest.raises(ConfigurationError):
            SyntheticExperimentConfig(mobility="teleport")
        config = SyntheticExperimentConfig.ci_scale()
        assert config.load_to_packets_per_hour(10) == pytest.approx(720.0)
        assert config.with_mobility("exponential").mobility == "exponential"
        assert config.with_buffer(1000).buffer_capacity == 1000


class TestRunners:
    def test_trace_runner_caches_and_shares_workloads(self, tiny_trace_config):
        runner = TraceRunner(tiny_trace_config)
        assert runner.day_traces() is runner.day_traces()
        first = runner.workloads(2.0)
        second = runner.workloads(2.0)
        assert first is second
        results = runner.run_protocol(standard_protocols()[3], load_packets_per_hour=2.0)
        assert len(results) == tiny_trace_config.num_days

    def test_trace_runner_optimal(self, tiny_trace_config):
        runner = TraceRunner(tiny_trace_config)
        outcomes = runner.run_optimal(load_packets_per_hour=1.0)
        assert outcomes and all(0 <= o.delivery_rate() <= 1 for o in outcomes)

    def test_synthetic_runner(self, tiny_synthetic_config):
        runner = SyntheticRunner(tiny_synthetic_config)
        results = runner.run_protocol(standard_protocols()[3], packets_per_interval=5.0)
        assert len(results) == tiny_synthetic_config.num_runs
        assert results[0].num_packets > 0

    def test_sweep_over_protocols(self, tiny_synthetic_config):
        runner = SyntheticRunner(tiny_synthetic_config)
        specs = standard_protocols()[2:]  # Spray and Wait + Random (fast)
        series = sweep(runner, specs, [2.0, 5.0], "delivery_rate")
        assert set(series) == {spec.label for spec in specs}
        assert all(len(values) == 2 for values in series.values())
        assert all(0.0 <= v <= 1.0 for values in series.values() for v in values)


class TestExperimentIndex:
    def test_every_exhibit_registered(self):
        expected = {"table3"} | {f"figure{i}" for i in list(range(3, 25))}
        assert set(EXPERIMENT_INDEX) == expected


class TestFigureSmoke:
    """Minimal-scale smoke runs of representative figure functions."""

    def test_table3_and_figure3(self, tiny_trace_config):
        from repro.experiments import deployment

        table = deployment.run_table3(config=tiny_trace_config)
        assert 0 <= table.get("percentage_delivered_per_day") <= 100
        figure = deployment.run_figure3(config=tiny_trace_config, simulation_repeats=1)
        assert figure.labels() == ["Real", "Simulation"]
        assert "relative gap" in figure.notes

    def test_figure4_structure(self, tiny_trace_config):
        from repro.experiments import trace_comparison

        figure = trace_comparison.run_figure4(loads=(2.0,), config=tiny_trace_config)
        assert set(figure.labels()) == {"Rapid", "MaxProp", "Spray and Wait", "Random"}
        assert all(len(series.y) == 1 for series in figure.series)
        assert all(y >= 0 for series in figure.series for y in series.y)

    def test_figure8_caps(self, tiny_trace_config):
        from repro.experiments import control_channel

        figure = control_channel.run_figure8(
            caps=(0.0, 0.2), loads=(2.0,), config=tiny_trace_config
        )
        assert len(figure.series) == 1
        assert len(figure.series[0].x) == 2

    def test_figure13_includes_optimal(self, tiny_trace_config):
        from repro.experiments import optimal_comparison

        figure = optimal_comparison.run_figure13(loads=(1.0,), config=tiny_trace_config)
        assert "Optimal" in figure.labels()
        optimal = figure.get("Optimal").y[0]
        rapid = figure.get("Rapid: In-band control channel").y[0]
        assert optimal <= rapid + 1e-6

    def test_figure15_fairness(self, tiny_trace_config):
        from repro.experiments import fairness

        figure = fairness.run_figure15(batch_sizes=(5,), config=tiny_trace_config, background_load=2.0)
        assert figure.series and all(0 <= y <= 1 for y in figure.series[0].y)

    def test_figure16_synthetic(self, tiny_synthetic_config):
        from repro.experiments import synthetic

        figure = synthetic.run_figure16(loads=(3.0,), config=tiny_synthetic_config)
        assert set(figure.labels()) == {"Rapid", "MaxProp", "Spray and Wait", "Random"}

    def test_figure19_buffer_sweep(self, tiny_synthetic_config):
        from repro.experiments import synthetic

        figure = synthetic.run_figure19(buffers_kb=(10.0, 40.0), load=5.0, config=tiny_synthetic_config)
        assert len(figure.series[0].x) == 2
