"""Tests for the synthetic DieselNet trace generator and trace I/O."""

import io

import pytest

from repro import units
from repro.exceptions import TraceFormatError
from repro.mobility.schedule import Meeting, MeetingSchedule
from repro.traces.dieselnet import DieselNetParameters, DieselNetTraceGenerator, summarize_days
from repro.traces.io import read_schedule, schedule_from_string, schedule_to_string, write_schedule


@pytest.fixture
def small_parameters():
    return DieselNetParameters(
        num_buses=10,
        avg_buses_per_day=6,
        day_duration=2 * units.HOUR,
        avg_meetings_per_day=40,
        avg_bytes_per_day=40 * 200 * units.KB,
        num_routes=3,
    )


class TestDieselNetParameters:
    def test_defaults_match_paper_calibration(self):
        params = DieselNetParameters()
        assert params.num_buses == 40
        assert params.avg_buses_per_day == 19
        assert params.day_duration == 19 * units.HOUR

    def test_validation(self):
        with pytest.raises(ValueError):
            DieselNetParameters(num_buses=1)
        with pytest.raises(ValueError):
            DieselNetParameters(avg_buses_per_day=100)
        with pytest.raises(ValueError):
            DieselNetParameters(num_routes=0)

    def test_mean_capacity(self):
        params = DieselNetParameters(avg_meetings_per_day=100, avg_bytes_per_day=100e6)
        assert params.mean_capacity == pytest.approx(1e6)

    def test_scaled_preserves_bounds(self):
        scaled = DieselNetParameters().scaled(0.25)
        assert 4 <= scaled.num_buses <= 40
        assert scaled.avg_buses_per_day <= scaled.num_buses
        with pytest.raises(ValueError):
            DieselNetParameters().scaled(0)


class TestDieselNetTraceGenerator:
    def test_day_structure(self, small_parameters):
        generator = DieselNetTraceGenerator(small_parameters, seed=1)
        day = generator.generate_day(day_index=3)
        assert day.day_index == 3
        assert len(day.buses_on_road) >= 2
        assert day.schedule.duration == small_parameters.day_duration
        # Meetings only involve buses on the road.
        on_road = set(day.buses_on_road)
        for meeting in day.schedule:
            assert meeting.node_a in on_road and meeting.node_b in on_road

    def test_reproducible(self, small_parameters):
        a = DieselNetTraceGenerator(small_parameters, seed=5).generate_days(2)
        b = DieselNetTraceGenerator(small_parameters, seed=5).generate_days(2)
        assert [d.num_meetings for d in a] == [d.num_meetings for d in b]
        assert [d.buses_on_road for d in a] == [d.buses_on_road for d in b]

    def test_calibration_is_roughly_matched(self, small_parameters):
        generator = DieselNetTraceGenerator(small_parameters, seed=11)
        days = generator.generate_days(15)
        summary = summarize_days(days)
        assert summary["avg_buses_per_day"] == pytest.approx(
            small_parameters.avg_buses_per_day, rel=0.35
        )
        assert summary["avg_meetings_per_day"] == pytest.approx(
            small_parameters.avg_meetings_per_day, rel=0.5
        )
        assert summary["avg_bytes_per_day"] == pytest.approx(
            small_parameters.avg_bytes_per_day, rel=0.6
        )

    def test_route_structure_skews_meetings(self, small_parameters):
        generator = DieselNetTraceGenerator(small_parameters, seed=3)
        routes = generator.routes
        days = generator.generate_days(10)
        same_route, cross_route = 0, 0
        for day in days:
            for meeting in day.schedule:
                if routes[meeting.node_a] == routes[meeting.node_b]:
                    same_route += 1
                else:
                    cross_route += 1
        pairs_same = sum(
            1
            for a in range(small_parameters.num_buses)
            for b in range(a + 1, small_parameters.num_buses)
            if routes[a] == routes[b]
        )
        pairs_cross = (
            small_parameters.num_buses * (small_parameters.num_buses - 1) // 2 - pairs_same
        )
        # Per-pair meeting frequency should be clearly higher on shared routes.
        assert same_route / max(pairs_same, 1) > cross_route / max(pairs_cross, 1)

    def test_explicit_bus_list(self, small_parameters):
        generator = DieselNetTraceGenerator(small_parameters, seed=2)
        day = generator.generate_day(buses=[0, 1, 2])
        assert day.buses_on_road == [0, 1, 2]

    def test_summarize_requires_days(self):
        with pytest.raises(ValueError):
            summarize_days([])


class TestTraceIO:
    def test_roundtrip_string(self, tiny_schedule):
        text = schedule_to_string(tiny_schedule)
        parsed = schedule_from_string(text)
        assert len(parsed) == len(tiny_schedule)
        assert parsed.duration == tiny_schedule.duration
        assert [m.pair() for m in parsed] == [m.pair() for m in tiny_schedule]

    def test_roundtrip_file(self, tmp_path, tiny_schedule):
        path = tmp_path / "trace.txt"
        write_schedule(tiny_schedule, path)
        parsed = read_schedule(path)
        assert len(parsed) == len(tiny_schedule)

    def test_roundtrip_stream(self, tiny_schedule):
        buffer = io.StringIO()
        write_schedule(tiny_schedule, buffer)
        buffer.seek(0)
        parsed = read_schedule(buffer)
        assert parsed.total_capacity() == pytest.approx(tiny_schedule.total_capacity())

    def test_comments_and_blank_lines_ignored(self):
        text = "# comment\n\n1.0 0 1 500.0\n"
        parsed = schedule_from_string(text)
        assert len(parsed) == 1

    def test_malformed_line_raises(self):
        with pytest.raises(TraceFormatError):
            schedule_from_string("1.0 0 1\n")
        with pytest.raises(TraceFormatError):
            schedule_from_string("abc 0 1 500\n")
        with pytest.raises(TraceFormatError):
            schedule_from_string("# duration: abc\n1.0 0 1 500\n")

    def test_duration_header_respected(self):
        parsed = schedule_from_string("# duration: 99.0\n1.0 0 1 500.0\n")
        assert parsed.duration == 99.0
