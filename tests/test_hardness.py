"""Tests for the Appendix hardness constructions."""

import networkx as nx
import pytest

from repro.exceptions import ConfigurationError
from repro.hardness.edp_reduction import (
    max_edge_disjoint_paths,
    max_packets_deliverable,
    paths_to_transfer_schedule,
    reduce_edp_to_dtn,
    topological_edge_labels,
)
from repro.hardness.gadget import (
    BasicGadget,
    delivery_rate_bound,
    left_first_choice,
    packets_introduced,
    play_basic_gadget,
    play_composed_gadget,
    replicate_first_choice,
)
from repro.hardness.online_adversary import (
    OnlineAdversary,
    broadcast_first_strategy,
    evaluate_online_algorithm,
    one_to_one_strategy,
    reversed_strategy,
)


class TestOnlineAdversary:
    @pytest.mark.parametrize("strategy", [one_to_one_strategy, reversed_strategy, broadcast_first_strategy])
    @pytest.mark.parametrize("n", [3, 6, 10])
    def test_algorithm_delivers_at_most_one(self, strategy, n):
        outcome = evaluate_online_algorithm(strategy, num_packets=n)
        assert outcome.algorithm_deliverable <= 1
        assert outcome.adversary_deliverable == n
        assert outcome.competitive_ratio >= n

    def test_assignment_is_a_bijection(self):
        adversary = OnlineAdversary(num_packets=5)
        transfers = {i: {adversary.intermediates[i]} for i in range(5)}
        assignment = adversary.generate_assignment(transfers)
        assert sorted(assignment.keys()) == adversary.intermediates
        assert sorted(assignment.values()) == adversary.destinations

    def test_schedule_structure(self):
        adversary = OnlineAdversary(num_packets=4, phase_gap=5.0)
        transfers = {i: {adversary.intermediates[i]} for i in range(4)}
        assignment = adversary.generate_assignment(transfers)
        schedule = adversary.full_schedule(assignment)
        times = {m.time for m in schedule}
        assert times == {0.0, 5.0}
        assert len(schedule) == 8

    def test_workload_destinations(self):
        adversary = OnlineAdversary(num_packets=3)
        packets = adversary.workload()
        assert [p.destination for p in packets] == adversary.destinations

    def test_validation(self):
        with pytest.raises(ValueError):
            OnlineAdversary(num_packets=0)


class TestGadget:
    def test_delivery_rate_bound_decreases_to_one_third(self):
        values = [delivery_rate_bound(i) for i in range(1, 30)]
        assert values[0] == pytest.approx(0.5)
        assert all(a >= b for a, b in zip(values, values[1:]))
        assert values[-1] == pytest.approx(1 / 3, abs=0.01)

    def test_packets_introduced(self):
        assert packets_introduced(1) == 4
        assert packets_introduced(3) == 10
        with pytest.raises(ValueError):
            packets_introduced(0)

    def test_basic_gadget_schedule(self):
        gadget = BasicGadget()
        schedule = gadget.schedule()
        assert len(schedule) == 6
        packets = gadget.initial_packets()
        assert len(packets) == 2
        assert packets[0].destination == gadget.dest_1

    def test_basic_gadget_split_choice(self):
        delivered, adv, total, history = play_basic_gadget(left_first_choice)
        assert (delivered, adv, total) == (2, 4, 4)
        assert history

    def test_basic_gadget_replicate_choice(self):
        delivered, adv, total, _ = play_basic_gadget(replicate_first_choice)
        assert (delivered, adv, total) == (1, 2, 2)

    def test_composed_gadget_rate_approaches_one_third(self):
        shallow = play_composed_gadget(1, left_first_choice)
        deep = play_composed_gadget(10, left_first_choice)
        assert shallow.algorithm_rate == pytest.approx(0.5)
        assert deep.algorithm_rate < shallow.algorithm_rate
        assert deep.algorithm_rate == pytest.approx(1 / 3, abs=0.05)
        assert deep.adversary_rate == 1.0

    def test_composed_gadget_validation(self):
        with pytest.raises(ValueError):
            play_composed_gadget(0, left_first_choice)


class TestEDPReduction:
    def _diamond(self):
        graph = nx.DiGraph()
        graph.add_edges_from([("s", "a"), ("s", "b"), ("a", "t"), ("b", "t")])
        return graph

    def test_labels_increase_along_paths(self):
        graph = self._diamond()
        labels = topological_edge_labels(graph)
        for path in nx.all_simple_paths(graph, "s", "t"):
            edge_labels = [labels[(path[i], path[i + 1])] for i in range(len(path) - 1)]
            assert edge_labels == sorted(edge_labels)

    def test_rejects_cycles(self):
        graph = nx.DiGraph([(0, 1), (1, 0)])
        with pytest.raises(ConfigurationError):
            topological_edge_labels(graph)

    def test_reduction_structure(self):
        graph = self._diamond()
        instance = reduce_edp_to_dtn(graph, [("s", "t")])
        assert len(instance.schedule) == graph.number_of_edges()
        assert all(m.capacity == 1.0 for m in instance.schedule)
        assert len(instance.packets) == 1

    def test_optima_match_on_diamond(self):
        graph = self._diamond()
        pairs = [("s", "t"), ("s", "t")]
        instance = reduce_edp_to_dtn(graph, pairs)
        assert max_edge_disjoint_paths(graph, pairs) == 2
        assert max_packets_deliverable(instance) == 2

    def test_optima_match_when_paths_conflict(self):
        # A single shared edge limits both pairs to one disjoint path.
        graph = nx.DiGraph([("s1", "m"), ("s2", "m"), ("m", "t1"), ("m", "t2")])
        pairs = [("s1", "t1"), ("s2", "t2")]
        # Both paths must use distinct edges through m, which they can:
        assert max_edge_disjoint_paths(graph, pairs) == 2
        # Now make them collide on one edge.
        graph2 = nx.DiGraph([("s1", "m"), ("s2", "m"), ("m", "t")])
        pairs2 = [("s1", "t"), ("s2", "t")]
        instance2 = reduce_edp_to_dtn(graph2, pairs2)
        assert max_edge_disjoint_paths(graph2, pairs2) == 1
        assert max_packets_deliverable(instance2) == 1

    def test_paths_to_transfer_schedule_valid(self):
        graph = self._diamond()
        instance = reduce_edp_to_dtn(graph, [("s", "t"), ("s", "t")])
        paths = {
            instance.packets[0].packet_id: [("s", "a"), ("a", "t")],
            instance.packets[1].packet_id: [("s", "b"), ("b", "t")],
        }
        transfers = paths_to_transfer_schedule(instance, paths)
        for packet_id, hops in transfers.items():
            times = [t for t, _, _ in hops]
            assert times == sorted(times)

    def test_paths_to_transfer_schedule_rejects_shared_edges(self):
        graph = self._diamond()
        instance = reduce_edp_to_dtn(graph, [("s", "t"), ("s", "t")])
        paths = {
            instance.packets[0].packet_id: [("s", "a"), ("a", "t")],
            instance.packets[1].packet_id: [("s", "a"), ("a", "t")],
        }
        with pytest.raises(ConfigurationError):
            paths_to_transfer_schedule(instance, paths)
