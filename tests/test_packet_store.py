"""Structure-of-arrays packet store: array/object agreement and caches.

The SoA :class:`~repro.dtn.packet_store.PacketStore` mirrors immutable
packet attributes into contiguous numpy columns; the object layer
(:class:`~repro.dtn.buffer.NodeBuffer` and the ``Packet`` values it holds)
remains the API.  These tests drive random add / remove / evict / expire
sequences through a buffer attached to a shared store and assert the two
layers never disagree — membership, per-row attributes, per-destination
byte totals, and the batched ``bytes_ahead`` kernel against its scalar
counterpart.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dtn.buffer import NodeBuffer
from repro.dtn.packet import Packet, PacketFactory
from repro.dtn.packet_store import PacketStore

# ----------------------------------------------------------------------
# Operation sequences: add / remove / evict / expire
# ----------------------------------------------------------------------
_add_op = st.tuples(
    st.just("add"),
    st.integers(min_value=1, max_value=4),  # destination
    st.integers(min_value=1, max_value=2000),  # size
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),  # creation time
    st.one_of(st.none(), st.floats(min_value=1.0, max_value=50.0, allow_nan=False)),
)
_remove_op = st.tuples(st.just("remove"), st.integers(min_value=0, max_value=10_000))
_evict_op = st.tuples(st.just("evict"), st.just(0))
_expire_op = st.tuples(st.just("expire"), st.floats(min_value=0.0, max_value=200.0, allow_nan=False))

operation_sequences = st.lists(
    st.one_of(_add_op, _remove_op, _evict_op, _expire_op), min_size=1, max_size=60
)


def _apply(buffer: NodeBuffer, factory: PacketFactory, op) -> None:
    kind = op[0]
    if kind == "add":
        _, destination, size, creation_time, deadline = op
        packet = factory.create(
            source=0,
            destination=destination,
            size=size,
            creation_time=creation_time,
            deadline=deadline,
        )
        if buffer.fits(packet):
            buffer.add(packet, now=creation_time)
    elif kind == "remove":
        ids = buffer.packet_ids
        if ids:
            buffer.remove(ids[op[1] % len(ids)])
    elif kind == "evict":
        # Evict the largest packet, the way protocols shed load under
        # pressure (which packet is immaterial to the store invariants).
        packets = buffer.packets()
        if packets:
            victim = max(packets, key=lambda p: (p.size, p.packet_id))
            buffer.remove(victim.packet_id)
    elif kind == "expire":
        now = op[1]
        for packet in buffer.packets():
            if packet.has_expired(now):
                buffer.discard(packet.packet_id)


def _assert_layers_agree(buffer: NodeBuffer, store: PacketStore) -> None:
    """The array columns and the object layer must describe the same state."""
    store.check_integrity()
    buffer.check_integrity()

    packets = buffer.packets()
    # Membership: every buffered packet has a registered row that maps
    # back to the identical object.
    for packet in packets:
        assert packet.packet_id in store
        row = store.row_of(packet.packet_id)
        assert store.packet_at(row) is packet

    rows = buffer.snapshot_rows()
    assert len(rows) == len(packets)
    # Per-row attributes.
    np.testing.assert_array_equal(store.ids[rows], [p.packet_id for p in packets])
    np.testing.assert_array_equal(store.sizes[rows], [p.size for p in packets])
    np.testing.assert_array_equal(
        store.destinations[rows], [p.destination for p in packets]
    )
    np.testing.assert_array_equal(
        store.creation_times[rows], [p.creation_time for p in packets]
    )

    # Per-destination byte totals via the columns vs the object layer.
    dests = store.destinations[rows]
    sizes = store.sizes[rows]
    for destination in buffer.destinations():
        object_total = sum(p.size for p in buffer.packets_for(destination))
        array_total = float(sizes[dests == destination].sum())
        assert array_total == object_total

    assert buffer.used_bytes == int(sizes.sum())


@settings(max_examples=60, deadline=None)
@given(ops=operation_sequences, capacity=st.integers(min_value=500, max_value=30_000))
def test_store_and_object_layer_never_disagree(ops, capacity):
    store = PacketStore()
    buffer = NodeBuffer(capacity=capacity)
    buffer.attach_store(store)
    factory = PacketFactory()
    for op in ops:
        _apply(buffer, factory, op)
        store.check_integrity()
    _assert_layers_agree(buffer, store)


@settings(max_examples=60, deadline=None)
@given(
    ops=operation_sequences,
    now=st.floats(min_value=0.0, max_value=200.0, allow_nan=False),
)
def test_bytes_ahead_batch_matches_scalar(ops, now):
    """The vectorised kernel equals ``bytes_ahead_of`` packet by packet."""
    buffer = NodeBuffer()
    factory = PacketFactory()
    for op in ops:
        _apply(buffer, factory, op)
    packets = buffer.packets()
    rows = buffer.snapshot_rows()
    batch = buffer.bytes_ahead_batch(packets, rows, now)
    scalar = [buffer.bytes_ahead_of(packet, now) for packet in packets]
    np.testing.assert_array_equal(batch, scalar)


@settings(max_examples=30, deadline=None)
@given(ops=operation_sequences)
def test_rows_survive_removal(ops):
    """Rows are append-only: removal from a buffer never invalidates rows."""
    store = PacketStore()
    buffer = NodeBuffer(capacity=50_000)
    buffer.attach_store(store)
    factory = PacketFactory()
    seen = {}
    for op in ops:
        _apply(buffer, factory, op)
        for packet in buffer.packets():
            row = store.row_of(packet.packet_id)
            previous = seen.setdefault(packet.packet_id, row)
            assert previous == row
    # Removed packets remain registered (append-only) at their old rows.
    for packet_id, row in seen.items():
        assert packet_id in store
        assert store.row_of(packet_id) == row


# ----------------------------------------------------------------------
# Store sharing and registration semantics
# ----------------------------------------------------------------------
class TestRegistration:
    def test_register_is_idempotent(self):
        store = PacketStore()
        packet = Packet(packet_id=7, source=0, destination=1, size=100)
        row = store.register(packet)
        assert store.register(packet) == row
        assert len(store) == 1

    def test_attach_store_registers_existing_contents(self):
        buffer = NodeBuffer()
        buffer.add(Packet(packet_id=1, source=0, destination=1, size=10))
        buffer.add(Packet(packet_id=2, source=0, destination=2, size=20))
        store = PacketStore()
        buffer.attach_store(store)
        assert 1 in store and 2 in store
        _assert_layers_agree(buffer, store)

    def test_buffers_share_one_store(self):
        store = PacketStore()
        a, b = NodeBuffer(store=store), NodeBuffer(store=store)
        packet = Packet(packet_id=3, source=0, destination=1, size=10)
        a.add(packet)
        b.add(packet)
        assert len(store) == 1
        assert a.snapshot_rows().tolist() == b.snapshot_rows().tolist()

    def test_standalone_buffer_lazily_creates_private_store(self):
        buffer = NodeBuffer()
        buffer.add(Packet(packet_id=4, source=0, destination=1, size=10))
        store = buffer.store
        assert 4 in store
        assert buffer.store is store

    def test_deadline_column_uses_nan_sentinel(self):
        store = PacketStore()
        with_deadline = Packet(packet_id=5, source=0, destination=1, size=10, deadline=30.0)
        without = Packet(packet_id=6, source=0, destination=1, size=10)
        store.register_all([with_deadline, without])
        deadlines = store.deadlines
        assert deadlines[store.row_of(5)] == 30.0
        assert np.isnan(deadlines[store.row_of(6)])


# ----------------------------------------------------------------------
# Snapshot caches (the allocation-churn satellite)
# ----------------------------------------------------------------------
class TestSnapshotCaches:
    @pytest.fixture(autouse=True)
    def _reset_stats(self):
        NodeBuffer.reset_snapshot_stats()
        yield
        NodeBuffer.reset_snapshot_stats()

    def test_repeated_reads_hit_the_cache(self):
        buffer = NodeBuffer()
        for i in range(5):
            buffer.add(Packet(packet_id=i, source=0, destination=1 + i % 2, size=10))
        NodeBuffer.reset_snapshot_stats()
        first = buffer.packets()
        for _ in range(9):
            assert buffer.packets() is first
        assert NodeBuffer.snapshot_stats == {"builds": 1, "hits": 9}

    def test_mutation_invalidates_every_snapshot(self):
        buffer = NodeBuffer()
        for i in range(4):
            buffer.add(Packet(packet_id=i, source=0, destination=1, size=10))
        before = buffer.packets()
        before_dest = buffer.packets_for(1)
        buffer.add(Packet(packet_id=99, source=0, destination=1, size=10))
        after = buffer.packets()
        assert after is not before
        assert 99 in [p.packet_id for p in after]
        assert 99 in [p.packet_id for p in buffer.packets_for(1)]
        assert buffer.packets_for(1) is not before_dest

    def test_hits_dwarf_builds_in_a_meeting_like_loop(self):
        """The profiling claim: repeated per-meeting reads stop allocating."""
        buffer = NodeBuffer()
        for i in range(20):
            buffer.add(Packet(packet_id=i, source=0, destination=1 + i % 3, size=10))
        NodeBuffer.reset_snapshot_stats()
        for _ in range(50):  # 50 "meetings" without buffer churn
            buffer.packets()
            buffer.destinations()
            for destination in buffer.destinations():
                buffer.packets_for(destination)
        stats = NodeBuffer.snapshot_stats
        assert stats["builds"] <= 5  # one per distinct snapshot kind
        assert stats["hits"] >= 10 * stats["builds"]

    def test_iteration_uses_cached_snapshot(self):
        buffer = NodeBuffer()
        for i in range(3):
            buffer.add(Packet(packet_id=i, source=0, destination=1, size=10))
        NodeBuffer.reset_snapshot_stats()
        assert [p.packet_id for p in buffer] == [0, 1, 2]
        assert [p.packet_id for p in buffer] == [0, 1, 2]
        assert NodeBuffer.snapshot_stats["builds"] == 1
        assert NodeBuffer.snapshot_stats["hits"] >= 1
