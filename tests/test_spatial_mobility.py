"""Tests for the spatial (position-based) mobility subsystem.

Determinism is the contract under test: fixed-seed position streams are
bit-reproducible, contact extraction is symmetric in the pair and never
produces overlapping windows, and a simulation cell driven by a spatial
model is byte-identical across repeat runs and across the serial,
parallel and cached engine backends.
"""

from __future__ import annotations

import json
from collections import defaultdict

import numpy as np
import pytest

from repro import units
from repro.engine import ExperimentEngine, ScenarioGrid
from repro.engine import worker as cell_worker
from repro.engine.spec import ScenarioSpec
from repro.exceptions import ConfigurationError
from repro.experiments.config import (
    ProtocolSpec,
    SyntheticExperimentConfig,
    TraceExperimentConfig,
)
from repro.mobility.spatial import (
    SPATIAL_MODEL_NAMES,
    ContactExtractor,
    GridRoutes,
    RandomWalk,
    RandomWaypoint,
    SampledRateLinkModel,
    SpatialParameters,
    build_spatial_model,
)

PARAMS = SpatialParameters(
    arena_width=500.0, arena_height=400.0, radio_range=100.0, time_step=1.0
)


def _canonical(payload) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _spatial_config(mobility: str) -> SyntheticExperimentConfig:
    return SyntheticExperimentConfig(
        num_nodes=8,
        mean_inter_meeting=70.0,
        transfer_opportunity=100 * units.KB,
        duration=3 * units.MINUTE,
        buffer_capacity=40 * units.KB,
        deadline=25.0,
        packet_interval=50.0,
        mobility=mobility,
        spatial=SpatialParameters(
            arena_width=400.0, arena_height=400.0, radio_range=120.0
        ),
        num_runs=1,
        seed=11,
    )


class TestSpatialParameters:
    def test_validation(self):
        with pytest.raises(ValueError):
            SpatialParameters(arena_width=0.0)
        with pytest.raises(ValueError):
            SpatialParameters(radio_range=-1.0)
        with pytest.raises(ValueError):
            SpatialParameters(speed_min=5.0, speed_max=1.0)
        with pytest.raises(ValueError):
            SpatialParameters(time_step=0.0)
        with pytest.raises(ValueError):
            SpatialParameters(turn_probability=1.5)

    def test_round_trip(self):
        params = PARAMS.with_arena(750.0).with_radio_range(50.0)
        rebuilt = SpatialParameters.from_dict(params.to_dict())
        assert rebuilt == params
        assert rebuilt.arena_width == 750.0
        assert rebuilt.radio_range == 50.0


class TestPositionStreams:
    @pytest.mark.parametrize("name", SPATIAL_MODEL_NAMES)
    def test_fixed_seed_positions_reproducible(self, name):
        a = build_spatial_model(name, num_nodes=9, params=PARAMS, seed=23)
        b = build_spatial_model(name, num_nodes=9, params=PARAMS, seed=23)
        pa = a.sample_positions(120.0)
        pb = b.sample_positions(120.0)
        assert pa.shape == pb.shape == (121, 9, 2)
        np.testing.assert_array_equal(pa, pb)

    @pytest.mark.parametrize("name", SPATIAL_MODEL_NAMES)
    def test_different_seeds_differ(self, name):
        a = build_spatial_model(name, num_nodes=9, params=PARAMS, seed=1)
        b = build_spatial_model(name, num_nodes=9, params=PARAMS, seed=2)
        assert not np.array_equal(a.sample_positions(60.0), b.sample_positions(60.0))

    @pytest.mark.parametrize("name", SPATIAL_MODEL_NAMES)
    def test_positions_stay_inside_arena(self, name):
        model = build_spatial_model(name, num_nodes=12, params=PARAMS, seed=7)
        positions = model.sample_positions(300.0)
        assert positions[..., 0].min() >= 0.0
        assert positions[..., 0].max() <= PARAMS.arena_width
        assert positions[..., 1].min() >= 0.0
        assert positions[..., 1].max() <= PARAMS.arena_height

    def test_grid_positions_on_streets(self):
        params = SpatialParameters(
            arena_width=600.0, arena_height=600.0, grid_spacing=150.0
        )
        model = GridRoutes(num_nodes=10, params=params, seed=4)
        positions = model.sample_positions(200.0)
        on_vertical = np.isclose(positions[..., 0] % 150.0, 0.0, atol=1e-6) | np.isclose(
            positions[..., 0] % 150.0, 150.0, atol=1e-6
        )
        on_horizontal = np.isclose(positions[..., 1] % 150.0, 0.0, atol=1e-6) | np.isclose(
            positions[..., 1] % 150.0, 150.0, atol=1e-6
        )
        assert np.all(on_vertical | on_horizontal)

    def test_grid_requires_one_block(self):
        with pytest.raises(ValueError):
            GridRoutes(
                num_nodes=4,
                params=SpatialParameters(
                    arena_width=50.0, arena_height=50.0, grid_spacing=200.0
                ),
            )

    def test_waypoint_pause_holds_position(self):
        params = SpatialParameters(
            arena_width=200.0,
            arena_height=200.0,
            speed_min=50.0,
            speed_max=60.0,
            pause_max=1000.0,
        )
        model = RandomWaypoint(num_nodes=6, params=params, seed=3)
        positions = model.sample_positions(120.0)
        # With enormous pauses and fast legs, every node ends up parked at
        # a waypoint: the last two snapshots must agree for paused nodes.
        assert np.array_equal(positions[-1], positions[-2])


class TestContactExtraction:
    @pytest.mark.parametrize("name", SPATIAL_MODEL_NAMES)
    def test_windows_disjoint_and_ordered(self, name):
        model = build_spatial_model(name, num_nodes=12, params=PARAMS, seed=9)
        schedule = model.generate(400.0)
        assert len(schedule) > 0
        per_pair = defaultdict(list)
        for contact in schedule:
            assert contact.duration >= PARAMS.time_step
            assert contact.end <= 400.0
            assert contact.capacity > 0.0
            per_pair[contact.pair()].append(contact)
        for windows in per_pair.values():
            for earlier, later in zip(windows, windows[1:]):
                assert earlier.end <= later.start

    def test_extraction_is_symmetric(self):
        """Swapping the two nodes' position columns swaps nothing: the
        extracted windows are identical (contact(a,b) == contact(b,a))."""
        model = RandomWaypoint(num_nodes=6, params=PARAMS, seed=31)
        snapshots = [(t, p.copy()) for t, p in model.iter_positions(200.0)]
        extractor = ContactExtractor(PARAMS)
        forward = extractor.extract(iter(snapshots), 200.0)
        # Relabel the nodes in reverse: node i becomes node n-1-i.
        reversed_snapshots = [(t, p[::-1].copy()) for t, p in snapshots]
        backward = extractor.extract(iter(reversed_snapshots), 200.0)
        remap = {
            (c.time, tuple(sorted((5 - c.node_a, 5 - c.node_b))), c.capacity, c.duration)
            for c in backward
        }
        original = {
            (c.time, c.pair(), c.capacity, c.duration) for c in forward
        }
        assert original == remap

    def test_adjacency_matches_distance(self):
        params = SpatialParameters(radio_range=10.0)
        extractor = ContactExtractor(params)
        positions = np.array([[0.0, 0.0], [6.0, 8.0], [100.0, 100.0]])
        adjacency = extractor.adjacency(positions)
        assert adjacency[0, 1] and adjacency[1, 0]  # distance exactly 10
        assert not adjacency[0, 2] and not adjacency[2, 0]
        assert not adjacency.diagonal().any()

    def test_constant_rate_capacity_scales_with_duration(self):
        model = RandomWalk(num_nodes=8, params=PARAMS, seed=13)
        schedule = model.generate(300.0)
        for contact in schedule:
            assert contact.capacity == pytest.approx(
                PARAMS.link_rate * contact.duration
            )

    def test_distance_rate_profile(self):
        params = SpatialParameters(
            arena_width=300.0, arena_height=300.0, radio_range=120.0, distance_rate=True
        )
        model = RandomWaypoint(num_nodes=8, params=params, seed=5)
        schedule = model.generate(200.0)
        assert len(schedule) > 0
        contact = schedule[0]
        profile = contact.profile
        assert isinstance(profile, SampledRateLinkModel)
        # Distance-degraded capacity never exceeds the full-rate budget.
        assert contact.capacity <= params.link_rate * contact.duration + 1e-9
        # The profile is monotone and inverts around the full capacity.
        half = profile.bytes_within(contact, contact.duration / 2)
        assert 0.0 < half < contact.capacity
        assert profile.time_to_transfer(contact, contact.capacity) == pytest.approx(
            contact.duration
        )

    def test_sampled_profile_monotone_inverse(self):
        profile = SampledRateLinkModel(2.0, [100.0, 0.0, 50.0])
        contact = None  # the profile ignores the contact argument
        times = np.linspace(0.0, 6.0, 25)
        values = [profile.bytes_within(contact, t) for t in times]
        assert all(b2 >= b1 for b1, b2 in zip(values, values[1:]))
        for target in (50.0, 150.0, 250.0):
            elapsed = profile.time_to_transfer(contact, target)
            assert profile.bytes_within(contact, elapsed) == pytest.approx(
                target, rel=1e-6
            )


class TestSpatialCellsThroughEngine:
    @pytest.mark.parametrize("name", SPATIAL_MODEL_NAMES)
    def test_golden_cell_byte_stable(self, name):
        """A fixed-seed spatial cell serializes byte-identically on repeat
        runs with cold input caches."""
        spec = ScenarioSpec.for_cell(
            config=_spatial_config(name),
            protocol=ProtocolSpec(label="rapid", registry_name="rapid"),
            load=4.0,
            run_index=0,
        )
        cell_worker.clear_input_caches()
        first = cell_worker.run_cell(spec).to_dict()
        cell_worker.clear_input_caches()
        second = cell_worker.run_cell(spec).to_dict()
        assert _canonical(first) == _canonical(second)
        assert first["meetings_processed"] > 0
        assert len(first["records"]) > 0

    def test_mobility_override_equals_config_mobility(self):
        """A spec-level mobility override reproduces the schedule of a
        configuration that names the same model directly."""
        base = _spatial_config("powerlaw")
        direct = cell_worker.synthetic_schedule(base.with_mobility("waypoint"), 0)
        overridden = cell_worker.synthetic_schedule(base, 0, "waypoint")
        assert [
            (c.time, c.node_a, c.node_b, c.capacity, c.duration) for c in direct
        ] == [(c.time, c.node_a, c.node_b, c.capacity, c.duration) for c in overridden]

    def test_mobility_axis_identical_across_backends(self, tmp_path):
        """The acceptance criterion: a waypoint+grid sweep is
        byte-identical across serial, workers, and cold/warm caches."""
        grid = ScenarioGrid(
            config=_spatial_config("powerlaw"),
            protocols=[ProtocolSpec(label="rapid", registry_name="rapid")],
            loads=(4.0,),
            mobilities=("waypoint", "grid"),
        )
        assert len(grid) == 2
        with ExperimentEngine(workers=1) as engine:
            serial = _canonical([r.to_dict() for r in engine.run_grid(grid)])
        with ExperimentEngine(workers=2) as engine:
            parallel = _canonical([r.to_dict() for r in engine.run_grid(grid)])
        cache_dir = tmp_path / "cache"
        with ExperimentEngine(workers=1, cache_dir=cache_dir) as engine:
            cold = _canonical([r.to_dict() for r in engine.run_grid(grid)])
        with ExperimentEngine(workers=1, cache_dir=cache_dir) as engine:
            warm = _canonical([r.to_dict() for r in engine.run_grid(grid)])
            assert engine.stats.cache_hits == len(grid)
        assert parallel == serial
        assert cold == serial
        assert warm == serial

    def test_grid_expansion_order_and_len(self):
        grid = ScenarioGrid(
            config=_spatial_config("powerlaw"),
            protocols=[ProtocolSpec(label="rapid", registry_name="rapid")],
            loads=(4.0, 8.0),
            mobilities=(None, "walk"),
        )
        cells = grid.cells()
        assert len(cells) == len(grid) == 4
        assert [c.mobility for c in cells] == [None, None, "walk", "walk"]
        assert cells[0].resolved_mobility() == "powerlaw"
        assert cells[2].resolved_mobility() == "walk"

    def test_spec_round_trip_preserves_mobility(self):
        spec = ScenarioSpec.for_cell(
            config=_spatial_config("powerlaw"),
            protocol=ProtocolSpec(label="rapid", registry_name="rapid"),
            load=4.0,
            run_index=0,
            mobility="grid",
        )
        rebuilt = ScenarioSpec.from_dict(spec.to_dict())
        assert rebuilt.mobility == "grid"
        assert rebuilt.cache_key() == spec.cache_key()

    def test_mobility_override_changes_cache_key(self):
        config = _spatial_config("powerlaw")
        protocol = ProtocolSpec(label="rapid", registry_name="rapid")
        plain = ScenarioSpec.for_cell(
            config=config, protocol=protocol, load=4.0, run_index=0
        )
        walked = ScenarioSpec.for_cell(
            config=config, protocol=protocol, load=4.0, run_index=0, mobility="walk"
        )
        assert plain.cache_key() != walked.cache_key()


class TestValidation:
    def test_trace_cells_reject_mobility(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec.for_cell(
                config=TraceExperimentConfig.ci_scale(num_days=1),
                protocol=ProtocolSpec(label="rapid", registry_name="rapid"),
                load=4.0,
                run_index=0,
                mobility="waypoint",
            )

    def test_unknown_mobility_rejected(self):
        with pytest.raises(ConfigurationError):
            _spatial_config("powerlaw").with_mobility("teleport")
        with pytest.raises(ConfigurationError):
            ScenarioSpec.for_cell(
                config=_spatial_config("powerlaw"),
                protocol=ProtocolSpec(label="rapid", registry_name="rapid"),
                load=4.0,
                run_index=0,
                mobility="teleport",
            )

    def test_config_round_trip_preserves_spatial(self):
        config = _spatial_config("grid")
        rebuilt = SyntheticExperimentConfig.from_dict(config.to_dict())
        assert rebuilt.spatial == config.spatial
        assert rebuilt.mobility == "grid"

    def test_build_unknown_spatial_model(self):
        with pytest.raises(KeyError):
            build_spatial_model("teleport", num_nodes=4)


class TestSpatialCLI:
    def test_sweep_mobility_axis(self, capsys):
        from repro.cli import main

        code = main(
            [
                "sweep",
                "--family",
                "synthetic",
                "--mobility",
                "waypoint,grid",
                "--protocols",
                "random",
                "--loads",
                "4",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "random [waypoint]" in output
        assert "random [grid]" in output

    def test_sweep_unknown_mobility_rejected(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "sweep",
                    "--family",
                    "synthetic",
                    "--mobility",
                    "teleport",
                    "--protocols",
                    "random",
                    "--loads",
                    "4",
                ]
            )
            == 2
        )
        assert "unknown mobility model" in capsys.readouterr().err

    def test_trace_family_rejects_mobility(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "sweep",
                    "--family",
                    "trace",
                    "--mobility",
                    "waypoint",
                    "--protocols",
                    "random",
                    "--loads",
                    "2",
                ]
            )
            == 2
        )
        assert "synthetic" in capsys.readouterr().err

    def test_quicksim_spatial(self, capsys):
        from repro.cli import main

        code = main(
            [
                "quicksim",
                "--protocol",
                "random",
                "--nodes",
                "6",
                "--duration",
                "120",
                "--mobility",
                "waypoint",
                "--arena",
                "300",
                "--radio-range",
                "120",
            ]
        )
        assert code == 0
        assert "delivery_rate" in capsys.readouterr().out

    def test_quicksim_arena_requires_spatial_model(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "quicksim",
                    "--protocol",
                    "random",
                    "--nodes",
                    "4",
                    "--duration",
                    "60",
                    "--arena",
                    "300",
                ]
            )
            == 2
        )
        assert "spatial" in capsys.readouterr().err

    def test_quicksim_mean_meeting_rejected_for_spatial_model(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "quicksim",
                    "--protocol",
                    "random",
                    "--nodes",
                    "4",
                    "--duration",
                    "60",
                    "--mobility",
                    "walk",
                    "--mean-meeting",
                    "10",
                ]
            )
            == 2
        )
        assert "--mean-meeting" in capsys.readouterr().err

    def test_sweep_arena_requires_spatial_mobility(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "sweep",
                    "--family",
                    "synthetic",
                    "--protocols",
                    "random",
                    "--loads",
                    "4",
                    "--arena",
                    "300",
                ]
            )
            == 2
        )
        assert "spatial" in capsys.readouterr().err
