"""Documentation and packaging checks.

Four guarantees, enforced so they cannot silently rot:

* the committed CLI reference page matches what the live argparse
  parsers render (``scripts/gen_cli_docs.py``);
* every internal link in ``docs/`` and the README resolves, and every
  page the mkdocs nav mentions exists (the dependency-free local half
  of CI's ``mkdocs build --strict`` job);
* the example gallery documents every script under ``examples/``;
* the public API surface keeps full docstring coverage, and the
  packaged console-script entry point targets a real callable.
"""

from __future__ import annotations

import importlib
import inspect
import re
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS_DIR = REPO_ROOT / "docs"

#: The public API surface under docstring coverage (module, every public
#: class/function defined in it, every public method of those classes).
PUBLIC_API_MODULES = (
    "repro.engine",
    "repro.engine.spec",
    "repro.engine.executor",
    "repro.engine.aggregator",
    "repro.routing.base",
    "repro.routing.balanced",
    "repro.dtn.simulator",
    "repro.analysis.stats",
    "repro.analysis.streaming",
    "repro.mobility",
    "repro.mobility.base",
    "repro.mobility.schedule",
    "repro.mobility.spatial",
    "repro.mobility.spatial.base",
    "repro.mobility.spatial.params",
    "repro.mobility.spatial.contacts",
    "repro.mobility.spatial.waypoint",
    "repro.mobility.spatial.walk",
    "repro.mobility.spatial.grid",
    "repro.experiments.config",
    "repro.experiments.runner",
    "repro.observability",
    "repro.observability.trace",
    "repro.observability.metrics",
    "repro.observability.telemetry",
    "repro.observability.inspect",
    "repro.workloads",
    "repro.workloads.base",
    "repro.workloads.models",
    "repro.workloads.params",
    "repro.workloads.popularity",
    "repro.workloads.profile",
)


# ----------------------------------------------------------------------
# CLI reference: generated page must match the live parsers
# ----------------------------------------------------------------------
class TestCliReference:
    def test_cli_reference_is_up_to_date(self):
        sys.path.insert(0, str(REPO_ROOT / "scripts"))
        try:
            from gen_cli_docs import OUTPUT_PATH, render_cli_reference
        finally:
            sys.path.pop(0)
        expected = render_cli_reference()
        committed = OUTPUT_PATH.read_text(encoding="utf-8")
        assert committed == expected, (
            "docs/reference/cli.md is stale; regenerate with "
            "`PYTHONPATH=src python scripts/gen_cli_docs.py`"
        )

    def test_reference_covers_every_subcommand(self):
        text = (DOCS_DIR / "reference" / "cli.md").read_text(encoding="utf-8")
        for command in ("run", "sweep", "quicksim", "list", "protocols"):
            assert f"## repro-dtn {command}" in text


# ----------------------------------------------------------------------
# Internal links and navigation
# ----------------------------------------------------------------------
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _slugify(heading: str) -> str:
    slug = re.sub(r"[^\w\- ]", "", heading).strip().lower()
    return re.sub(r"\s+", "-", slug)


def _markdown_files():
    return [REPO_ROOT / "README.md", *sorted(DOCS_DIR.rglob("*.md"))]


class TestInternalLinks:
    def test_relative_links_resolve(self):
        broken = []
        for md_file in _markdown_files():
            text = md_file.read_text(encoding="utf-8")
            for target in _LINK.findall(text):
                if target.startswith(("http://", "https://", "mailto:")):
                    continue
                path_part, _, fragment = target.partition("#")
                if not path_part:
                    continue  # same-page anchor
                resolved = (md_file.parent / path_part).resolve()
                if not resolved.exists():
                    broken.append(f"{md_file.relative_to(REPO_ROOT)} -> {target}")
                elif fragment and resolved.suffix == ".md":
                    headings = re.findall(
                        r"^#+\s+(.*)$",
                        resolved.read_text(encoding="utf-8"),
                        re.MULTILINE,
                    )
                    if fragment not in {_slugify(h) for h in headings}:
                        broken.append(
                            f"{md_file.relative_to(REPO_ROOT)} -> {target} (anchor)"
                        )
        assert not broken, "broken internal links:\n" + "\n".join(broken)

    def test_mkdocs_nav_entries_exist(self):
        yaml = pytest.importorskip("yaml")
        config = yaml.safe_load((REPO_ROOT / "mkdocs.yml").read_text(encoding="utf-8"))

        def walk(node):
            if isinstance(node, str):
                yield node
            elif isinstance(node, list):
                for item in node:
                    yield from walk(item)
            elif isinstance(node, dict):
                for value in node.values():
                    yield from walk(value)

        pages = list(walk(config["nav"]))
        assert pages, "mkdocs nav is empty"
        for page in pages:
            assert (DOCS_DIR / page).is_file(), f"nav references missing page {page}"

    def test_every_docs_page_is_reachable_from_nav(self):
        yaml = pytest.importorskip("yaml")
        config = yaml.safe_load((REPO_ROOT / "mkdocs.yml").read_text(encoding="utf-8"))
        nav_text = str(config["nav"])
        for md_file in DOCS_DIR.rglob("*.md"):
            relative = md_file.relative_to(DOCS_DIR).as_posix()
            assert relative in nav_text, f"docs page {relative} missing from nav"


# ----------------------------------------------------------------------
# Example gallery completeness
# ----------------------------------------------------------------------
class TestExampleGallery:
    def test_gallery_documents_every_example(self):
        gallery = (DOCS_DIR / "examples.md").read_text(encoding="utf-8")
        scripts = sorted((REPO_ROOT / "examples").glob("*.py"))
        assert scripts, "examples/ directory is empty?"
        missing = [s.name for s in scripts if f"## {s.name}" not in gallery]
        assert not missing, f"examples missing from docs/examples.md: {missing}"

    def test_gallery_has_no_stale_entries(self):
        gallery = (DOCS_DIR / "examples.md").read_text(encoding="utf-8")
        documented = re.findall(r"^## (\S+\.py)$", gallery, re.MULTILINE)
        existing = {s.name for s in (REPO_ROOT / "examples").glob("*.py")}
        stale = [name for name in documented if name not in existing]
        assert not stale, f"docs/examples.md documents missing scripts: {stale}"


# ----------------------------------------------------------------------
# Docstring coverage of the public API surface
# ----------------------------------------------------------------------
def _docstring_gaps(module_name: str):
    module = importlib.import_module(module_name)
    gaps = []
    if not (module.__doc__ or "").strip():
        gaps.append(f"{module_name} (module docstring)")
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module_name:
            continue  # re-export; covered where it is defined
        if not (inspect.getdoc(obj) or "").strip():
            gaps.append(f"{module_name}.{name}")
        if inspect.isclass(obj):
            for member_name, member in vars(obj).items():
                if member_name.startswith("_"):
                    continue
                func = member
                if isinstance(member, (classmethod, staticmethod)):
                    func = member.__func__
                elif isinstance(member, property):
                    func = member.fget
                elif not inspect.isfunction(member):
                    continue
                if func is None or not (getattr(func, "__doc__", "") or "").strip():
                    gaps.append(f"{module_name}.{name}.{member_name}")
    return gaps


class TestDocstringCoverage:
    @pytest.mark.parametrize("module_name", PUBLIC_API_MODULES)
    def test_public_api_fully_documented(self, module_name):
        gaps = _docstring_gaps(module_name)
        assert not gaps, (
            f"public API members without docstrings in {module_name}:\n"
            + "\n".join(gaps)
        )


# ----------------------------------------------------------------------
# Packaging metadata
# ----------------------------------------------------------------------
class TestPackagingMetadata:
    def test_console_script_targets_real_callable(self):
        setup_text = (REPO_ROOT / "setup.py").read_text(encoding="utf-8")
        match = re.search(r'"repro-dtn\s*=\s*([\w.]+):(\w+)"', setup_text)
        assert match, "setup.py must declare the repro-dtn console script"
        module_name, attribute = match.groups()
        module = importlib.import_module(module_name)
        assert callable(getattr(module, attribute)), (
            f"entry point {module_name}:{attribute} is not callable"
        )

    def test_setup_metadata_fields_present(self):
        setup_text = (REPO_ROOT / "setup.py").read_text(encoding="utf-8")
        for required in (
            "long_description",
            "project_urls",
            "python_requires",
            "entry_points",
            'package_dir={"": "src"}',
        ):
            assert required in setup_text, f"setup.py is missing {required}"

    def test_version_single_source(self):
        import repro

        setup_text = (REPO_ROOT / "setup.py").read_text(encoding="utf-8")
        assert "read_version" in setup_text
        assert re.match(r"\d+\.\d+\.\d+", repro.__version__)
