"""The steady-state engine's differential test harness.

This file is the validation contract of ``result_mode="streaming"``:

* **Sketch properties** (hypothesis): the delay quantile sketch stays
  within its documented relative error bound of the exact
  ``numpy.quantile(..., method="inverted_cdf")`` answer on adversarial
  streams — sorted, reversed, constant, heavy-tailed — and merges
  exactly.
* **Differential harness**: every supported protocol, both experiment
  families, multi-class workloads, fault injection and the durational
  contact layer run the *same* cell in records mode and in streaming
  mode; every integer counter must agree exactly, float aggregates to
  1e-9, and quantiles within the sketch bound of the exact per-record
  answer.  Everything in the result payload outside the records/summary
  themselves must be byte-identical.
* **Backend identity**: streaming cells are byte-identical across
  serial, ``workers=4``, cold-cache and warm-cache engine backends, and
  ``SimulationResult.merge`` of streaming summaries is consistent with
  the merged record-mode run.
* **Graceful degradation**: record-dependent APIs raise
  :class:`~repro.exceptions.RecordsUnavailableError` (never
  ``AttributeError``) in streaming mode, while the exact counter APIs
  and ``repro-dtn inspect --packets`` keep working.
* **Steady-state statistics**: MSER-5 warm-up detection and batch-means
  confidence intervals, plus the balanced-allocation routing baseline
  that exercises the long-horizon regime.
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import units
from repro.analysis.stats import (
    WarmupEstimate,
    batch_means_interval,
    mser5_truncation,
)
from repro.analysis.streaming import (
    DEFAULT_MAX_WINDOWS,
    DEFAULT_RELATIVE_ERROR,
    DEFAULT_WINDOW_S,
    MIN_TRACKABLE_DELAY,
    ClassTally,
    DeliveryRateWindows,
    QuantileSketch,
    StreamingSummary,
)
from repro.dtn.packet import PacketFactory
from repro.dtn.results import (
    RESULT_MODE_RECORDS,
    RESULT_MODE_STREAMING,
    RESULT_MODES,
    SimulationResult,
)
from repro.dtn.simulator import run_simulation
from repro.engine import ExperimentEngine, ScenarioGrid
from repro.engine import worker as cell_worker
from repro.engine.spec import ScenarioSpec
from repro.exceptions import ConfigurationError, RecordsUnavailableError
from repro.experiments.config import (
    ProtocolSpec,
    SyntheticExperimentConfig,
    TraceExperimentConfig,
)
from repro.faults import FaultParameters, build_fault_model
from repro.mobility.exponential import ExponentialMobility
from repro.routing import BalancedAllocationProtocol
from repro.routing.registry import available_protocols, create_factory
from repro.workloads import PoissonArrivals, TrafficClass

QUANTILES = (0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0)

#: Tolerance for float aggregates: streaming sums accumulate in delivery
#: order, records iterate in packet-id order, so the comparisons allow
#: for addition-order rounding (integer counters are compared exactly).
FLOAT_RTOL = 1e-9


def _canonical(payload) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _assert_quantiles_within_bound(sketch: QuantileSketch, values) -> None:
    """Every quantile estimate within the sketch's documented bound."""
    array = np.asarray(list(values), dtype=float)
    assert sketch.count == array.size
    for q in QUANTILES:
        exact = float(np.quantile(array, q, method="inverted_cdf"))
        estimate = sketch.quantile(q)
        # The documented contract: relative error alpha on trackable
        # values, at most MIN_TRACKABLE_DELAY absolute on the rest, plus
        # a hair of float slack for the log/pow round trip.
        tolerance = sketch.relative_error * exact + MIN_TRACKABLE_DELAY + 1e-9 * max(1.0, exact)
        assert abs(estimate - exact) <= tolerance, (
            f"q={q}: estimate {estimate} vs exact {exact} (n={array.size})"
        )


# ----------------------------------------------------------------------
# Quantile sketch: property-based tests against numpy.quantile
# ----------------------------------------------------------------------
positive_delays = st.lists(
    st.floats(min_value=1e-6, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=200,
)


class TestQuantileSketchProperties:
    @given(values=positive_delays)
    @settings(max_examples=60, deadline=None)
    def test_arbitrary_streams_within_bound(self, values):
        sketch = QuantileSketch()
        sketch.extend(values)
        _assert_quantiles_within_bound(sketch, values)

    @given(values=positive_delays)
    @settings(max_examples=40, deadline=None)
    def test_sorted_stream_within_bound(self, values):
        ordered = sorted(values)
        sketch = QuantileSketch()
        sketch.extend(ordered)
        _assert_quantiles_within_bound(sketch, ordered)

    @given(values=positive_delays)
    @settings(max_examples=40, deadline=None)
    def test_reversed_stream_matches_sorted_stream(self, values):
        """The sketch is order-independent: identical buckets either way."""
        forward = QuantileSketch()
        forward.extend(sorted(values))
        backward = QuantileSketch()
        backward.extend(sorted(values, reverse=True))
        forward_payload = forward.to_dict()
        backward_payload = backward.to_dict()
        # The running float sum is the one addition-order-dependent field;
        # buckets, count, min and max are exactly order-independent.
        assert backward_payload.pop("sum") == pytest.approx(
            forward_payload.pop("sum"), rel=1e-12
        )
        assert forward_payload == backward_payload
        _assert_quantiles_within_bound(backward, values)

    @given(
        value=st.floats(min_value=1e-6, max_value=1e6, allow_nan=False),
        count=st.integers(min_value=1, max_value=500),
    )
    @settings(max_examples=40, deadline=None)
    def test_constant_stream_every_quantile_equal(self, value, count):
        sketch = QuantileSketch()
        sketch.add(value, count=count)
        stream = [value] * count
        _assert_quantiles_within_bound(sketch, stream)
        # Constant stream: every quantile is (an estimate of) the value.
        for q in QUANTILES:
            assert abs(sketch.quantile(q) - value) <= sketch.relative_error * value + 1e-9 * value

    @given(
        exponents=st.lists(
            st.floats(min_value=-6.0, max_value=13.0, allow_nan=False),
            min_size=1,
            max_size=150,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_heavy_tailed_stream_within_bound(self, exponents):
        """Log-uniform values spanning ~19 decades (a heavy tail by any
        measure) stay within the bound."""
        values = [math.exp(e) for e in exponents]
        sketch = QuantileSketch()
        sketch.extend(values)
        _assert_quantiles_within_bound(sketch, values)

    @given(values=positive_delays, split=st.integers(min_value=0, max_value=200))
    @settings(max_examples=60, deadline=None)
    def test_merge_equals_concatenated_stream(self, values, split):
        split = min(split, len(values))
        whole = QuantileSketch()
        whole.extend(values)
        left = QuantileSketch()
        left.extend(values[:split])
        right = QuantileSketch()
        right.extend(values[split:])
        left.merge(right)
        merged_payload = left.to_dict()
        whole_payload = whole.to_dict()
        # Bucket counts merge exactly; the float sum may differ by an ulp
        # because merge adds two partial sums instead of streaming.
        assert merged_payload.pop("sum") == pytest.approx(
            whole_payload.pop("sum"), rel=1e-12
        )
        assert merged_payload == whole_payload

    @given(values=positive_delays)
    @settings(max_examples=40, deadline=None)
    def test_serialization_round_trip_byte_stable(self, values):
        sketch = QuantileSketch()
        sketch.extend(values)
        payload = sketch.to_dict()
        rebuilt = QuantileSketch.from_dict(json.loads(_canonical(payload)))
        assert _canonical(rebuilt.to_dict()) == _canonical(payload)
        for q in QUANTILES:
            assert rebuilt.quantile(q) == sketch.quantile(q)

    @given(values=positive_delays)
    @settings(max_examples=40, deadline=None)
    def test_exact_side_channels(self, values):
        """count/sum/min/max/mean carry no sketch error at all."""
        sketch = QuantileSketch()
        sketch.extend(values)
        assert sketch.count == len(values)
        assert sketch.sum == pytest.approx(math.fsum(values), rel=1e-12)
        assert sketch.min == min(values)
        assert sketch.max == max(values)
        assert sketch.mean() == pytest.approx(math.fsum(values) / len(values), rel=1e-12)


class TestQuantileSketchEdgeCases:
    def test_empty_sketch(self):
        sketch = QuantileSketch()
        assert sketch.count == 0
        assert sketch.quantile(0.5) == 0.0
        assert sketch.min == 0.0 and sketch.max == 0.0
        assert sketch.mean() == 0.0
        assert sketch.num_buckets == 0

    def test_rejects_bad_values(self):
        sketch = QuantileSketch()
        with pytest.raises(ValueError):
            sketch.add(-1.0)
        with pytest.raises(ValueError):
            sketch.add(float("nan"))
        with pytest.raises(ValueError):
            sketch.add(float("inf"))
        with pytest.raises(ValueError):
            sketch.add(1.0, count=0)
        with pytest.raises(ValueError):
            QuantileSketch(relative_error=0.0)
        with pytest.raises(ValueError):
            QuantileSketch(relative_error=1.0)
        with pytest.raises(ValueError):
            sketch.quantile(1.5)

    def test_zero_bucket_absolute_error(self):
        """Sub-nanosecond delays report exactly 0.0 (<= 1ns absolute)."""
        sketch = QuantileSketch()
        sketch.add(0.0)
        sketch.add(MIN_TRACKABLE_DELAY / 2)
        assert sketch.quantile(0.5) == 0.0
        assert sketch.quantile(1.0) == 0.0
        assert sketch.num_buckets == 1

    def test_merge_rejects_mismatched_error_bounds(self):
        coarse = QuantileSketch(relative_error=0.05)
        fine = QuantileSketch(relative_error=0.01)
        with pytest.raises(ValueError, match="error bounds"):
            fine.merge(coarse)

    def test_bucket_count_bounded_by_value_range_not_stream_length(self):
        """20k log-uniform samples over 15 decades: far fewer buckets
        than samples, and within the documented ~2500-bucket envelope."""
        rng = np.random.default_rng(7)
        values = np.exp(rng.uniform(math.log(1e-9), math.log(1e6), size=20_000))
        sketch = QuantileSketch()
        sketch.extend(values.tolist())
        assert sketch.count == 20_000
        assert sketch.num_buckets < 2500
        # Feeding the same range again must not grow the bucket table.
        before = sketch.num_buckets
        sketch.extend(values[:5000].tolist())
        assert sketch.num_buckets == before


# ----------------------------------------------------------------------
# Delivery-rate windows: decimation and merge
# ----------------------------------------------------------------------
class TestDeliveryRateWindows:
    def test_events_land_in_floor_windows(self):
        windows = DeliveryRateWindows(window=10.0, max_windows=8)
        for t in (0.0, 9.9, 10.0, 25.0):
            windows.add_creation(t)
        windows.add_delivery(25.0)
        assert windows.created_counts() == [2, 1, 1]
        assert windows.delivered_counts() == [0, 0, 1]
        assert windows.delivery_rates() == [0.0, 0.0, 0.1]

    def test_decimation_doubles_window_and_preserves_totals(self):
        windows = DeliveryRateWindows(window=1.0, max_windows=4)
        for t in range(16):
            windows.add_creation(float(t))
        assert windows.window == 4.0
        assert windows.num_windows <= 4
        assert sum(windows.created_counts()) == 16

    def test_merge_aligns_widths_exactly(self):
        coarse = DeliveryRateWindows(window=1.0, max_windows=4)
        fine = DeliveryRateWindows(window=1.0, max_windows=4)
        for t in range(16):
            coarse.add_creation(float(t))  # decimates to window=4
        for t in range(4):
            fine.add_creation(float(t))  # stays at window=1
        coarse.merge(fine)
        assert coarse.window == 4.0
        assert sum(coarse.created_counts()) == 20

    def test_merge_rebudgets_after_union(self):
        left = DeliveryRateWindows(window=1.0, max_windows=4)
        right = DeliveryRateWindows(window=1.0, max_windows=4)
        left.add_creation(3.0)
        for t in range(16):
            right.add_creation(float(t))
        left.merge(right)
        assert left.num_windows <= 4
        assert sum(left.created_counts()) == 17

    def test_merge_rejects_different_base_widths(self):
        with pytest.raises(ValueError, match="base widths"):
            DeliveryRateWindows(window=60.0).merge(DeliveryRateWindows(window=30.0))

    def test_round_trip(self):
        windows = DeliveryRateWindows(window=5.0, max_windows=8)
        for t in (1.0, 7.0, 33.0):
            windows.add_creation(t)
        windows.add_delivery(33.0)
        payload = windows.to_dict()
        rebuilt = DeliveryRateWindows.from_dict(json.loads(_canonical(payload)))
        assert _canonical(rebuilt.to_dict()) == _canonical(payload)

    def test_validation(self):
        with pytest.raises(ValueError):
            DeliveryRateWindows(window=0.0)
        with pytest.raises(ValueError):
            DeliveryRateWindows(max_windows=1)
        with pytest.raises(ValueError):
            DeliveryRateWindows().add_creation(-1.0)

    @given(
        times=st.lists(
            st.floats(min_value=0.0, max_value=1e5, allow_nan=False),
            min_size=1,
            max_size=100,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_budget_and_conservation_invariants(self, times):
        windows = DeliveryRateWindows(window=7.0, max_windows=8)
        for t in times:
            windows.add_creation(t)
        assert windows.num_windows <= windows.max_windows
        assert sum(windows.created_counts()) == len(times)
        # Width is always base * 2^k.
        ratio = windows.window / windows.base_window
        assert ratio == 2 ** int(math.log2(ratio))


# ----------------------------------------------------------------------
# Differential harness: records mode vs streaming mode on the same cell
# ----------------------------------------------------------------------
def _synthetic_cell(
    protocol: str,
    result_mode: str,
    *,
    seed: int = 21,
    num_nodes: int = 8,
    duration: float = 500.0,
    load: float = 40.0,
    deadline: float = 90.0,
    buffer_kb: float = 30.0,
    classes: tuple = (),
    fault_model: str = None,
    contact_model: str = None,
) -> SimulationResult:
    """Run one synthetic cell; both modes get byte-identical inputs."""
    mobility = ExponentialMobility(
        num_nodes=num_nodes,
        mean_inter_meeting=60.0,
        transfer_opportunity=40 * units.KB,
        seed=seed,
    )
    schedule = mobility.generate(duration)
    workload = PoissonArrivals(
        packets_per_hour=load, seed=seed + 1, deadline=deadline, classes=classes
    )
    packets = workload.generate(range(num_nodes), duration)
    options: dict = {}
    if fault_model is not None:
        options["fault_model"] = build_fault_model(
            FaultParameters(), seed=97, model=fault_model
        )
    if contact_model is not None:
        options["contact_model"] = contact_model
    if result_mode != RESULT_MODE_RECORDS:
        options["result_mode"] = result_mode
    return run_simulation(
        schedule,
        packets,
        create_factory(protocol),
        buffer_capacity=buffer_kb * units.KB,
        seed=5,
        options=options or None,
    )


def _assert_modes_agree(records: SimulationResult, streaming: SimulationResult) -> None:
    """The full differential contract between the two result modes."""
    summary = streaming.streaming
    assert summary is not None
    assert records.streaming is None
    assert records.has_records and not streaming.has_records

    # -- Integer counters: exactly equal ------------------------------
    assert records.num_packets > 0  # the cell must carry real traffic
    assert streaming.num_packets == records.num_packets
    assert streaming.num_delivered == records.num_delivered
    assert streaming.replications == records.replications
    assert streaming.deliveries == records.deliveries
    assert streaming.traffic_classes() == records.traffic_classes()
    assert summary.delay_sketch.count == records.num_delivered

    for name in records.traffic_classes():
        class_records = records.class_records(name)
        tally = summary.tally(name)
        assert tally.packets == len(class_records)
        assert tally.delivered == sum(1 for r in class_records if r.delivered)
        assert tally.delivered_in_deadline == sum(
            1 for r in class_records if r.met_deadline()
        )
        assert tally.replicas_created == sum(r.replicas_created for r in class_records)
        assert tally.drops == sum(r.drops for r in class_records)

    # -- Float aggregates: exact formulas, addition-order tolerance ---
    assert streaming.delivery_rate() == pytest.approx(
        records.delivery_rate(), rel=FLOAT_RTOL, abs=1e-12
    )
    assert streaming.deadline_success_rate() == pytest.approx(
        records.deadline_success_rate(), rel=FLOAT_RTOL, abs=1e-12
    )
    assert streaming.average_delay() == pytest.approx(
        records.average_delay(), rel=FLOAT_RTOL, abs=1e-9
    )
    assert streaming.average_delay(include_undelivered=True) == pytest.approx(
        records.average_delay(include_undelivered=True), rel=FLOAT_RTOL, abs=1e-9
    )
    assert streaming.max_delay() == pytest.approx(
        records.max_delay(), rel=FLOAT_RTOL, abs=1e-9
    )
    assert streaming.max_delay(include_undelivered=True) == pytest.approx(
        records.max_delay(include_undelivered=True), rel=FLOAT_RTOL, abs=1e-9
    )

    record_pcs = records.per_class_summary()
    stream_pcs = streaming.per_class_summary()
    assert sorted(record_pcs) == sorted(stream_pcs)
    for name, expected in record_pcs.items():
        actual = stream_pcs[name]
        assert sorted(actual) == sorted(expected)
        for key, value in expected.items():
            assert actual[key] == pytest.approx(value, rel=FLOAT_RTOL, abs=1e-9), (
                f"class {name}, metric {key}"
            )

    # -- Quantiles within the documented sketch bound -----------------
    delays = records.delays()
    if delays:
        _assert_quantiles_within_bound(summary.delay_sketch, delays)
        for q in QUANTILES:
            exact = records.delay_quantile(q)
            estimate = streaming.delay_quantile(q)
            assert abs(estimate - exact) <= (
                summary.delay_sketch.relative_error * exact
                + MIN_TRACKABLE_DELAY
                + 1e-9 * max(1.0, exact)
            )

    # -- Everything else in the payload: byte-identical ---------------
    record_payload = records.to_dict()
    stream_payload = streaming.to_dict()
    assert stream_payload["records"] == []
    assert "streaming" in stream_payload and "streaming" not in record_payload
    record_payload.pop("records")
    stream_payload.pop("records")
    stream_payload.pop("streaming")
    assert _canonical(record_payload) == _canonical(stream_payload)

    # The streaming payload itself round-trips byte-stably.
    rebuilt = SimulationResult.from_dict(json.loads(_canonical(streaming.to_dict())))
    assert _canonical(rebuilt.to_dict()) == _canonical(streaming.to_dict())


class TestDifferentialRecordsVsStreaming:
    """Both modes on identical cells: the heart of the PR."""

    @pytest.mark.parametrize(
        "protocol",
        [
            "rapid",
            "maxprop",
            "prophet",
            "spray-and-wait",
            "epidemic-acks",
            "random-acks",
            "direct",
            "balanced",
        ],
    )
    def test_protocols_agree_across_modes(self, protocol):
        records = _synthetic_cell(protocol, RESULT_MODE_RECORDS)
        streaming = _synthetic_cell(protocol, RESULT_MODE_STREAMING)
        _assert_modes_agree(records, streaming)

    def test_multi_class_workload_agrees_across_modes(self):
        classes = (
            TrafficClass(name="bulk", weight=3.0),
            TrafficClass(name="interactive", weight=1.0, deadline=30.0),
        )
        records = _synthetic_cell("rapid", RESULT_MODE_RECORDS, classes=classes)
        streaming = _synthetic_cell("rapid", RESULT_MODE_STREAMING, classes=classes)
        assert records.traffic_classes() == ["bulk", "interactive"]
        _assert_modes_agree(records, streaming)

    def test_fault_injected_cell_agrees_across_modes(self):
        records = _synthetic_cell("epidemic-acks", RESULT_MODE_RECORDS, fault_model="crash")
        streaming = _synthetic_cell(
            "epidemic-acks", RESULT_MODE_STREAMING, fault_model="crash"
        )
        assert records.node_outages > 0  # faults actually fired
        _assert_modes_agree(records, streaming)

    def test_contact_layer_cell_agrees_across_modes(self):
        records = _synthetic_cell("rapid", RESULT_MODE_RECORDS, contact_model="durational")
        streaming = _synthetic_cell(
            "rapid", RESULT_MODE_STREAMING, contact_model="durational"
        )
        _assert_modes_agree(records, streaming)

    def test_storage_pressure_cell_agrees_across_modes(self):
        """Tiny buffers force creation-time drops through on_drop."""
        records = _synthetic_cell("random", RESULT_MODE_RECORDS, buffer_kb=4.0, load=80.0)
        streaming = _synthetic_cell(
            "random", RESULT_MODE_STREAMING, buffer_kb=4.0, load=80.0
        )
        _assert_modes_agree(records, streaming)

    def test_trace_family_cell_agrees_across_modes(self):
        """Worker-level differential: the spec's result_mode override."""
        config = TraceExperimentConfig.ci_scale(seed=7, num_days=1)
        protocol = ProtocolSpec(label="rapid", registry_name="rapid")

        def run(result_mode=None):
            cell_worker.clear_input_caches()
            return cell_worker.run_cell(
                ScenarioSpec.for_cell(
                    config=config,
                    protocol=protocol,
                    load=4.0,
                    run_index=0,
                    result_mode=result_mode,
                )
            )

        records = run()
        streaming = run(result_mode=RESULT_MODE_STREAMING)
        _assert_modes_agree(records, streaming)

    def test_default_mode_payload_has_no_streaming_key(self):
        """The byte-identity contract: records mode serializes exactly as
        it did before the streaming layer existed."""
        result = _synthetic_cell("rapid", RESULT_MODE_RECORDS)
        payload = result.to_dict()
        assert "streaming" not in payload
        assert "result_mode" not in payload


class TestStreamingBackendIdentity:
    """Streaming cells byte-identical across every engine backend."""

    def _grid(self) -> ScenarioGrid:
        config = SyntheticExperimentConfig(
            num_nodes=8,
            mean_inter_meeting=70.0,
            transfer_opportunity=100 * units.KB,
            duration=4 * units.MINUTE,
            buffer_capacity=40 * units.KB,
            deadline=25.0,
            packet_interval=50.0,
            mobility="exponential",
            num_runs=1,
            seed=11,
            result_mode=RESULT_MODE_STREAMING,
        )
        protocols = [
            ProtocolSpec(label="rapid", registry_name="rapid"),
            ProtocolSpec(label="balanced", registry_name="balanced"),
        ]
        return ScenarioGrid(config=config, protocols=protocols, loads=(6.0,))

    def test_streaming_identical_across_backends(self, tmp_path):
        grid = self._grid()
        with ExperimentEngine(workers=1) as engine:
            serial_results = engine.run_grid(grid)
            serial = _canonical([r.to_dict() for r in serial_results])
        assert all(r.streaming is not None for r in serial_results)
        with ExperimentEngine(workers=4) as engine:
            parallel = _canonical([r.to_dict() for r in engine.run_grid(grid)])
        cache_dir = tmp_path / "cache"
        with ExperimentEngine(workers=1, cache_dir=cache_dir) as engine:
            cold = _canonical([r.to_dict() for r in engine.run_grid(grid)])
        with ExperimentEngine(workers=1, cache_dir=cache_dir) as engine:
            warm_results = engine.run_grid(grid)
            warm = _canonical([r.to_dict() for r in warm_results])
            assert engine.stats.cache_hits == len(grid)
        assert all(r.streaming is not None for r in warm_results)
        assert parallel == serial
        assert cold == serial
        assert warm == serial


class TestStreamingMerge:
    """merge() of streaming summaries vs the merged record-mode run."""

    def _segments(self, result_mode: str):
        """Two day-like segments sharing one packet-id space."""
        results = []
        for index in range(2):
            factory_seed = 31 + 10 * index
            mobility = ExponentialMobility(
                num_nodes=8,
                mean_inter_meeting=60.0,
                transfer_opportunity=40 * units.KB,
                seed=factory_seed,
            )
            schedule = mobility.generate(400.0)
            workload = PoissonArrivals(
                packets_per_hour=30.0,
                seed=factory_seed + 1,
                deadline=90.0,
                factory=self._factory,
            )
            packets = workload.generate(range(8), 400.0)
            options = (
                {"result_mode": result_mode}
                if result_mode != RESULT_MODE_RECORDS
                else None
            )
            results.append(
                run_simulation(
                    schedule,
                    packets,
                    create_factory("rapid"),
                    buffer_capacity=30 * units.KB,
                    seed=5 + index,
                    options=options,
                )
            )
        return results

    def setup_method(self):
        self._factory = PacketFactory()

    def test_merged_streaming_consistent_with_merged_records(self):
        streaming_parts = self._segments(RESULT_MODE_STREAMING)
        self._factory = PacketFactory()  # identical id space for the rerun
        record_parts = self._segments(RESULT_MODE_RECORDS)

        merged_streaming = SimulationResult.merge(streaming_parts)
        merged_records = SimulationResult.merge(record_parts)

        assert merged_streaming.streaming is not None
        assert merged_streaming.num_packets == merged_records.num_packets
        assert merged_streaming.num_delivered == merged_records.num_delivered
        assert merged_streaming.replications == merged_records.replications
        assert merged_streaming.average_delay() == pytest.approx(
            merged_records.average_delay(), rel=FLOAT_RTOL, abs=1e-9
        )
        assert merged_streaming.average_delay(include_undelivered=True) == pytest.approx(
            merged_records.average_delay(include_undelivered=True),
            rel=FLOAT_RTOL,
            abs=1e-9,
        )
        assert merged_streaming.delivery_rate() == pytest.approx(
            merged_records.delivery_rate(), rel=FLOAT_RTOL, abs=1e-12
        )
        delays = merged_records.delays()
        _assert_quantiles_within_bound(merged_streaming.streaming.delay_sketch, delays)

    def test_merge_equals_summary_of_parts(self):
        parts = self._segments(RESULT_MODE_STREAMING)
        merged = SimulationResult.merge(parts)
        assert merged.num_packets == sum(p.num_packets for p in parts)
        assert merged.num_delivered == sum(p.num_delivered for p in parts)
        assert merged.streaming.delay_sketch.count == sum(
            p.streaming.delay_sketch.count for p in parts
        )
        # Merging must not mutate the first input (deep-copy contract).
        assert parts[0].streaming.delay_sketch.count < merged.streaming.delay_sketch.count

    def test_merge_rejects_mixed_modes(self):
        streaming_part = self._segments(RESULT_MODE_STREAMING)[0]
        self._factory = PacketFactory()
        record_part = self._segments(RESULT_MODE_RECORDS)[1]
        with pytest.raises(ValueError, match="result_mode"):
            SimulationResult.merge([streaming_part, record_part])

    def test_summary_merge_is_exact_bucket_addition(self):
        parts = self._segments(RESULT_MODE_STREAMING)
        direct = StreamingSummary.from_dict(parts[0].streaming.to_dict())
        direct.merge(parts[1].streaming)
        merged = SimulationResult.merge(parts)
        assert _canonical(merged.streaming.to_dict()) == _canonical(direct.to_dict())


# ----------------------------------------------------------------------
# Graceful degradation: record APIs without records
# ----------------------------------------------------------------------
class TestGracefulDegradation:
    @pytest.fixture(scope="class")
    def streaming_result(self) -> SimulationResult:
        return _synthetic_cell("rapid", RESULT_MODE_STREAMING)

    @pytest.mark.parametrize(
        "call",
        [
            lambda r: r.packets(),
            lambda r: r.delivered_records(),
            lambda r: r.undelivered_records(),
            lambda r: r.delays(),
            lambda r: r.delays(include_undelivered=True),
            lambda r: r.record_for(0),
            lambda r: r.class_records("default"),
        ],
    )
    def test_record_apis_raise_clear_error(self, streaming_result, call):
        with pytest.raises(RecordsUnavailableError) as excinfo:
            call(streaming_result)
        message = str(excinfo.value)
        assert "result_mode='records'" in message
        assert "streaming" in message

    def test_exact_apis_keep_working(self, streaming_result):
        summary = streaming_result.summary()
        assert summary["packets"] == streaming_result.num_packets
        assert 0.0 < summary["delivery_rate"] <= 1.0
        per_class = streaming_result.per_class_summary()
        assert set(per_class) == set(streaming_result.traffic_classes())
        assert streaming_result.delay_quantile(0.5) >= 0.0

    def test_records_unavailable_is_a_repro_error(self):
        from repro.exceptions import ReproError

        assert issubclass(RecordsUnavailableError, ReproError)

    def test_inspect_packets_works_on_streaming_trace(self, tmp_path, capsys):
        """`repro-dtn inspect --packets` must keep working when the run
        retained no per-packet records (the trace carries the events)."""
        from repro.cli import main

        trace = tmp_path / "trace.jsonl"
        code = main(
            [
                "quicksim",
                "--protocol",
                "rapid",
                "--nodes",
                "6",
                "--duration",
                "200",
                "--seed",
                "3",
                "--result-mode",
                "streaming",
                "--trace-out",
                str(trace),
            ]
        )
        assert code == 0
        capsys.readouterr()
        code = main(["inspect", str(trace), "--packets", "--limit", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "packet" in out
        assert "delivered" in out


# ----------------------------------------------------------------------
# Option threading: config, spec, worker, CLI
# ----------------------------------------------------------------------
class TestResultModeThreading:
    def test_result_modes_constant(self):
        assert RESULT_MODES == (RESULT_MODE_RECORDS, RESULT_MODE_STREAMING)

    @pytest.mark.parametrize("config_cls", [TraceExperimentConfig, SyntheticExperimentConfig])
    def test_config_validates_and_copies(self, config_cls):
        config = config_cls()
        assert config.result_mode == RESULT_MODE_RECORDS
        updated = config.with_result_mode(RESULT_MODE_STREAMING)
        assert updated.result_mode == RESULT_MODE_STREAMING
        assert config.result_mode == RESULT_MODE_RECORDS
        with pytest.raises(ConfigurationError, match="result_mode"):
            config.with_result_mode("bogus")

    def test_config_round_trips_result_mode(self):
        config = SyntheticExperimentConfig(result_mode=RESULT_MODE_STREAMING)
        rebuilt = SyntheticExperimentConfig.from_dict(config.to_dict())
        assert rebuilt.result_mode == RESULT_MODE_STREAMING

    def test_spec_override_and_resolution(self):
        config = SyntheticExperimentConfig()
        protocol = ProtocolSpec(label="rapid", registry_name="rapid")
        spec = ScenarioSpec.for_cell(config=config, protocol=protocol, load=4.0, run_index=0)
        assert spec.resolved_result_mode() == RESULT_MODE_RECORDS
        override = ScenarioSpec.for_cell(
            config=config,
            protocol=protocol,
            load=4.0,
            run_index=0,
            result_mode=RESULT_MODE_STREAMING,
        )
        assert override.resolved_result_mode() == RESULT_MODE_STREAMING
        via_config = ScenarioSpec.for_cell(
            config=config.with_result_mode(RESULT_MODE_STREAMING),
            protocol=protocol,
            load=4.0,
            run_index=0,
        )
        assert via_config.resolved_result_mode() == RESULT_MODE_STREAMING

    def test_spec_round_trip_and_validation(self):
        config = SyntheticExperimentConfig()
        protocol = ProtocolSpec(label="rapid", registry_name="rapid")
        spec = ScenarioSpec.for_cell(
            config=config,
            protocol=protocol,
            load=4.0,
            run_index=0,
            result_mode=RESULT_MODE_STREAMING,
        )
        rebuilt = ScenarioSpec.from_dict(json.loads(_canonical(spec.to_dict())))
        assert rebuilt.result_mode == RESULT_MODE_STREAMING
        assert rebuilt.cache_key() == spec.cache_key()
        with pytest.raises(ConfigurationError, match="result_mode"):
            ScenarioSpec.for_cell(
                config=config,
                protocol=protocol,
                load=4.0,
                run_index=0,
                result_mode="bogus",
            )

    def test_simulator_rejects_unknown_result_mode(self, tiny_schedule):
        with pytest.raises(ConfigurationError, match="result_mode"):
            run_simulation(
                tiny_schedule,
                [],
                create_factory("direct"),
                seed=1,
                options={"result_mode": "bogus"},
            )

    def test_streaming_relative_error_option(self):
        result = _synthetic_cell("direct", RESULT_MODE_STREAMING)
        assert result.streaming.delay_sketch.relative_error == DEFAULT_RELATIVE_ERROR
        mobility = ExponentialMobility(
            num_nodes=6, mean_inter_meeting=60.0, transfer_opportunity=40 * units.KB, seed=3
        )
        schedule = mobility.generate(300.0)
        workload = PoissonArrivals(packets_per_hour=30.0, seed=4, deadline=90.0)
        packets = workload.generate(range(6), 300.0)
        result = run_simulation(
            schedule,
            packets,
            create_factory("direct"),
            seed=1,
            options={"result_mode": RESULT_MODE_STREAMING, "streaming_relative_error": 0.05},
        )
        assert result.streaming.delay_sketch.relative_error == 0.05
        with pytest.raises(ConfigurationError, match="streaming_relative_error"):
            run_simulation(
                schedule,
                packets,
                create_factory("direct"),
                seed=1,
                options={"result_mode": RESULT_MODE_STREAMING, "streaming_relative_error": 1.5},
            )

    def test_cli_quicksim_summary_identical_across_modes(self, capsys):
        from repro.cli import main

        base = ["quicksim", "--protocol", "rapid", "--nodes", "6", "--duration", "200", "--seed", "3"]
        assert main(base) == 0
        records_out = capsys.readouterr().out
        assert main(base + ["--result-mode", "streaming"]) == 0
        streaming_out = capsys.readouterr().out
        assert streaming_out == records_out

    def test_cli_rejects_unknown_result_mode(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["quicksim", "--result-mode", "bogus"])


# ----------------------------------------------------------------------
# Steady-state statistics: MSER-5 and batch means
# ----------------------------------------------------------------------
class TestWarmupAndBatchMeans:
    def test_mser5_finds_an_obvious_transient(self):
        rng = np.random.default_rng(0)
        warm = 50.0 - np.arange(100) * 0.45 + rng.normal(0, 1, 100)
        steady = 5.0 + rng.normal(0, 1, 2000)
        estimate = mser5_truncation(np.concatenate([warm, steady]))
        assert isinstance(estimate, WarmupEstimate)
        assert 50 <= estimate.truncation <= 200
        assert estimate.truncation % estimate.batch_size == 0
        assert 0.0 < estimate.truncated_fraction < 0.5

    def test_mser5_stationary_series_needs_no_truncation(self):
        rng = np.random.default_rng(1)
        estimate = mser5_truncation(5.0 + rng.normal(0, 1, 1000))
        assert estimate.truncation == 0

    def test_mser5_validation(self):
        with pytest.raises(ValueError, match="at least two batches"):
            mser5_truncation([1.0, 2.0, 3.0])
        with pytest.raises(ValueError, match="batch_size"):
            mser5_truncation([1.0] * 20, batch_size=0)

    def test_batch_means_covers_the_true_mean(self):
        rng = np.random.default_rng(2)
        series = 7.0 + rng.normal(0, 2, 4000)
        interval = batch_means_interval(series, num_batches=20)
        assert interval.contains(7.0)
        assert interval.half_width > 0.0

    def test_batch_means_respects_warmup(self):
        rng = np.random.default_rng(3)
        biased = np.concatenate([np.full(500, 100.0), 5.0 + rng.normal(0, 1, 4000)])
        raw = batch_means_interval(biased, num_batches=20)
        truncated = batch_means_interval(biased, num_batches=20, warmup=500)
        # The transient biases the raw estimate upward and inflates its
        # batch variance; truncation recovers a tight, centered interval.
        assert raw.mean > 10.0
        assert truncated.contains(5.0)
        assert truncated.half_width < raw.half_width / 10.0

    def test_batch_means_validation(self):
        with pytest.raises(ValueError, match="at least 2 batches"):
            batch_means_interval([1.0] * 100, num_batches=1)
        with pytest.raises(ValueError, match="post-warmup"):
            batch_means_interval([1.0] * 10, num_batches=20)
        with pytest.raises(ValueError, match="warmup"):
            batch_means_interval([1.0] * 100, warmup=-1)

    @given(
        data=st.lists(
            st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
            min_size=10,
            max_size=500,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_mser5_truncation_invariants(self, data):
        estimate = mser5_truncation(data)
        total = estimate.num_batches * estimate.batch_size
        assert estimate.truncation % estimate.batch_size == 0
        assert estimate.truncation < total
        assert estimate.truncated_fraction < 0.5 + 1e-12
        assert estimate.statistic >= 0.0

    def test_end_to_end_on_streaming_delivery_rates(self):
        """The pieces compose: a streaming run's windowed delivery-rate
        series feeds warm-up detection and batch-means estimation."""
        result = _synthetic_cell("rapid", RESULT_MODE_STREAMING, duration=900.0)
        rates = result.streaming.rate_windows.delivery_rates()
        assert len(rates) >= 10
        estimate = mser5_truncation(rates, batch_size=1)
        interval = batch_means_interval(rates, num_batches=5, warmup=estimate.truncation)
        assert interval.half_width >= 0.0
        assert interval.mean >= 0.0


# ----------------------------------------------------------------------
# Balanced-allocation baseline
# ----------------------------------------------------------------------
class TestBalancedAllocationProtocol:
    def test_registered(self):
        assert "balanced" in available_protocols()

    def test_delivers_and_is_deterministic(self):
        first = _synthetic_cell("balanced", RESULT_MODE_RECORDS)
        second = _synthetic_cell("balanced", RESULT_MODE_RECORDS)
        assert first.delivery_rate() > 0.5
        assert _canonical(first.to_dict()) == _canonical(second.to_dict())

    def test_reservation_validation(self):
        from repro.dtn.node import Node
        from repro.routing.base import ProtocolContext

        def make(reservation):
            node = Node.with_capacity(0, 10 * units.KB)
            context = ProtocolContext(nodes={0: node})
            return BalancedAllocationProtocol(node, context, reservation=reservation)

        assert make(0.5).reservation == 0.5
        with pytest.raises(ConfigurationError, match="fill fraction"):
            make(0.0)
        with pytest.raises(ConfigurationError, match="fill fraction"):
            make(1.5)

    def _pair(self, capacity=10 * 1024, reservation=0.5):
        from repro.dtn.node import Node
        from repro.routing.base import ProtocolContext

        sender_node = Node.with_capacity(0, capacity)
        receiver_node = Node.with_capacity(1, capacity)
        context = ProtocolContext(nodes={0: sender_node, 1: receiver_node})
        sender = BalancedAllocationProtocol(sender_node, context, reservation=reservation)
        receiver = BalancedAllocationProtocol(receiver_node, context, reservation=reservation)
        return sender, receiver

    def test_trunk_reservation_refuses_relayed_traffic(self, packet_factory):
        sender, receiver = self._pair(capacity=10 * 1024, reservation=0.5)
        # Fill the receiver past the reservation threshold.
        filler = packet_factory.create(source=1, destination=3, size=6 * 1024)
        assert receiver.on_packet_created(filler, now=0.0)
        assert receiver.buffer.occupancy() >= 0.5
        relayed = packet_factory.create(source=0, destination=2, size=1024)
        assert sender.on_packet_created(relayed, now=0.0)
        assert not receiver.accept_replica(relayed, sender, now=1.0)
        # Direct traffic bypasses the reservation.
        direct = packet_factory.create(source=0, destination=1, size=1024)
        assert sender.on_packet_created(direct, now=0.0)
        assert receiver.accept_replica(direct, sender, now=1.0)

    def test_join_shorter_queue(self, packet_factory):
        sender, receiver = self._pair(capacity=10 * 1024, reservation=0.9)
        light = packet_factory.create(source=0, destination=2, size=1024)
        assert sender.on_packet_created(light, now=0.0)
        # Receiver busier than sender: the two-choice rule refuses.
        filler = packet_factory.create(source=1, destination=3, size=4 * 1024)
        assert receiver.on_packet_created(filler, now=0.0)
        assert receiver.buffer.occupancy() > sender.buffer.occupancy()
        assert not receiver.accept_replica(light, sender, now=1.0)
        # Drain the receiver below the sender's load: now it accepts.
        receiver.buffer.remove(filler.packet_id)
        assert receiver.accept_replica(light, sender, now=2.0)

    def test_eviction_prefers_most_traveled_relayed_replica(self, packet_factory):
        _, receiver = self._pair(capacity=3 * 1024, reservation=1.0)
        own = packet_factory.create(source=1, destination=5, size=1024)
        assert receiver.on_packet_created(own, now=0.0)
        near = packet_factory.create(source=2, destination=5, size=1024)
        far = packet_factory.create(source=3, destination=5, size=1024)
        assert receiver.insert_packet(near, now=0.0, hop_count=1)
        assert receiver.insert_packet(far, now=0.0, hop_count=4)
        incoming = packet_factory.create(source=4, destination=5, size=1024)
        victim = receiver.choose_eviction_victim(incoming, now=1.0)
        assert victim == far.packet_id  # most hops goes first
        # Own packets are never victims.
        receiver.buffer.remove(near.packet_id)
        receiver.buffer.remove(far.packet_id)
        assert receiver.choose_eviction_victim(incoming, now=1.0) is None

    def test_agrees_across_modes_under_pressure(self):
        records = _synthetic_cell("balanced", RESULT_MODE_RECORDS, buffer_kb=6.0, load=80.0)
        streaming = _synthetic_cell(
            "balanced", RESULT_MODE_STREAMING, buffer_kb=6.0, load=80.0
        )
        _assert_modes_agree(records, streaming)


# ----------------------------------------------------------------------
# Class tallies and summaries
# ----------------------------------------------------------------------
class TestStreamingSummaryPieces:
    def test_class_tally_merge_and_round_trip(self):
        left = ClassTally(packets=3, delivered=2, delay_sum=10.0, delay_max=6.0)
        right = ClassTally(packets=2, delivered=1, delay_sum=4.0, delay_max=9.0, drops=1)
        left.merge(right)
        assert left.packets == 5 and left.delivered == 3
        assert left.delay_sum == 14.0 and left.delay_max == 9.0
        assert left.drops == 1
        rebuilt = ClassTally.from_dict(json.loads(_canonical(left.to_dict())))
        assert rebuilt == left

    def test_summary_aggregates_over_classes(self):
        summary = StreamingSummary(
            class_tallies={
                "a": ClassTally(packets=4, delivered=3, delay_sum=9.0, delay_max=5.0),
                "b": ClassTally(packets=6, delivered=2, delay_sum=4.0, delay_max=7.0),
            }
        )
        assert summary.num_packets == 10
        assert summary.num_delivered == 5
        assert summary.delay_sum == 13.0
        assert summary.delay_max == 7.0
        assert summary.traffic_classes() == ["a", "b"]
        assert summary.tally("missing").packets == 0

    def test_summary_merge_deep_copies_new_classes(self):
        target = StreamingSummary(class_tallies={"a": ClassTally(packets=1)})
        source = StreamingSummary(class_tallies={"b": ClassTally(packets=2)})
        target.merge(source)
        assert target.tally("b").packets == 2
        source.class_tallies["b"].packets = 99
        assert target.tally("b").packets == 2  # unshared

    def test_summary_round_trip_byte_stable(self):
        result = _synthetic_cell("rapid", RESULT_MODE_STREAMING)
        payload = result.streaming.to_dict()
        rebuilt = StreamingSummary.from_dict(json.loads(_canonical(payload)))
        assert _canonical(rebuilt.to_dict()) == _canonical(payload)
