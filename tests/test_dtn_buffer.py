"""Tests for the storage-constrained node buffer."""

import pytest

from repro.dtn.buffer import NodeBuffer
from repro.dtn.packet import PacketFactory
from repro.exceptions import BufferError_


@pytest.fixture
def factory():
    return PacketFactory()


class TestCapacity:
    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            NodeBuffer(capacity=0)

    def test_add_and_occupancy(self, factory):
        buffer = NodeBuffer(capacity=4096)
        p1 = factory.create(source=0, destination=1, size=1024)
        p2 = factory.create(source=0, destination=2, size=2048)
        buffer.add(p1, now=1.0)
        buffer.add(p2, now=2.0)
        assert buffer.used_bytes == 3072
        assert buffer.free_bytes == 1024
        assert buffer.occupancy() == pytest.approx(0.75)
        assert len(buffer) == 2

    def test_unlimited_capacity_occupancy_is_zero(self, factory):
        buffer = NodeBuffer()
        buffer.add(factory.create(source=0, destination=1, size=1024))
        assert buffer.occupancy() == 0.0

    def test_overflow_raises(self, factory):
        buffer = NodeBuffer(capacity=1024)
        buffer.add(factory.create(source=0, destination=1, size=1024))
        with pytest.raises(BufferError_):
            buffer.add(factory.create(source=0, destination=2, size=1))

    def test_duplicate_raises(self, factory):
        buffer = NodeBuffer(capacity=4096)
        packet = factory.create(source=0, destination=1, size=1024)
        buffer.add(packet)
        with pytest.raises(BufferError_):
            buffer.add(packet)

    def test_fits(self, factory):
        buffer = NodeBuffer(capacity=2048)
        small = factory.create(source=0, destination=1, size=1024)
        big = factory.create(source=0, destination=1, size=4096)
        assert buffer.fits(small)
        assert not buffer.fits(big)


class TestRemoval:
    def test_remove_returns_packet(self, factory):
        buffer = NodeBuffer(capacity=4096)
        packet = factory.create(source=0, destination=1, size=1024)
        buffer.add(packet, now=3.0)
        removed = buffer.remove(packet.packet_id)
        assert removed is packet
        assert packet.packet_id not in buffer
        assert buffer.used_bytes == 0

    def test_remove_missing_raises(self):
        buffer = NodeBuffer(capacity=1024)
        with pytest.raises(BufferError_):
            buffer.remove(999)

    def test_discard_is_silent_on_missing(self):
        buffer = NodeBuffer(capacity=1024)
        assert buffer.discard(999) is None

    def test_clear(self, factory):
        buffer = NodeBuffer(capacity=4096)
        for _ in range(3):
            buffer.add(factory.create(source=0, destination=1, size=1024))
        buffer.clear()
        assert len(buffer) == 0
        assert buffer.used_bytes == 0


class TestQueries:
    def test_packets_for_destination(self, factory):
        buffer = NodeBuffer()
        to_one = [factory.create(source=0, destination=1, size=10) for _ in range(3)]
        to_two = [factory.create(source=0, destination=2, size=10) for _ in range(2)]
        for packet in to_one + to_two:
            buffer.add(packet)
        assert len(buffer.packets_for(1)) == 3
        assert len(buffer.packets_for(2)) == 2
        assert set(buffer.destinations()) == {1, 2}

    def test_arrival_time(self, factory):
        buffer = NodeBuffer()
        packet = factory.create(source=0, destination=1)
        buffer.add(packet, now=12.0)
        assert buffer.arrival_time(packet.packet_id) == 12.0
        assert buffer.arrival_time(999) is None

    def test_bytes_ahead_of_orders_oldest_first(self, factory):
        buffer = NodeBuffer()
        older = factory.create(source=0, destination=5, size=100, creation_time=0.0)
        newer = factory.create(source=0, destination=5, size=200, creation_time=50.0)
        other_dest = factory.create(source=0, destination=6, size=400, creation_time=0.0)
        for packet in (older, newer, other_dest):
            buffer.add(packet)
        now = 100.0
        # The oldest packet is served first, so nothing is ahead of it.
        assert buffer.bytes_ahead_of(older, now) == 0
        # The newer packet waits behind the older one (same destination only).
        assert buffer.bytes_ahead_of(newer, now) == 100

    def test_bytes_ahead_ties_broken_by_packet_id(self, factory):
        buffer = NodeBuffer()
        first = factory.create(source=0, destination=5, size=100, creation_time=0.0)
        second = factory.create(source=0, destination=5, size=100, creation_time=0.0)
        buffer.add(first)
        buffer.add(second)
        ahead_first = buffer.bytes_ahead_of(first, 10.0)
        ahead_second = buffer.bytes_ahead_of(second, 10.0)
        assert sorted([ahead_first, ahead_second]) == [0, 100]


class TestDestinationIndex:
    """The per-destination serve-order index behind ``bytes_ahead_of``."""

    def test_index_matches_reference_scan_under_churn(self, factory):
        import random

        rng = random.Random(7)
        buffer = NodeBuffer()
        alive = []
        for step in range(300):
            if alive and rng.random() < 0.4:
                victim = alive.pop(rng.randrange(len(alive)))
                buffer.remove(victim.packet_id)
            else:
                packet = factory.create(
                    source=0,
                    destination=1 + rng.randrange(3),
                    size=rng.randrange(1, 500),
                    creation_time=float(rng.randrange(0, 50)),
                )
                buffer.add(packet, now=float(step))
                alive.append(packet)
            buffer.check_integrity()
        now = 100.0
        for packet in alive:
            assert buffer.bytes_ahead_of(packet, now) == buffer._bytes_ahead_scan(packet, now)

    def test_query_packet_not_in_buffer(self, factory):
        buffer = NodeBuffer()
        stored = factory.create(source=0, destination=5, size=100, creation_time=10.0)
        buffer.add(stored)
        older_query = factory.create(source=1, destination=5, size=70, creation_time=5.0)
        newer_query = factory.create(source=1, destination=5, size=70, creation_time=20.0)
        assert buffer.bytes_ahead_of(older_query, now=50.0) == 0
        assert buffer.bytes_ahead_of(newer_query, now=50.0) == 100

    def test_age_clamping_falls_back_to_reference_scan(self, factory):
        # When `now` precedes a creation time, ages clamp to zero and the
        # serve order degenerates to packet-id ties; the index defers to the
        # scan so both paths agree even in this degenerate case.
        buffer = NodeBuffer()
        a = factory.create(source=0, destination=5, size=100, creation_time=40.0)
        b = factory.create(source=0, destination=5, size=200, creation_time=30.0)
        buffer.add(a)
        buffer.add(b)
        now = 20.0  # earlier than both creation times
        assert buffer.bytes_ahead_of(a, now) == buffer._bytes_ahead_scan(a, now)
        assert buffer.bytes_ahead_of(b, now) == buffer._bytes_ahead_scan(b, now)

    def test_clear_resets_index(self, factory):
        buffer = NodeBuffer()
        packet = factory.create(source=0, destination=5, size=100)
        buffer.add(packet)
        buffer.clear()
        buffer.check_integrity()
        assert buffer.bytes_ahead_of(packet, now=10.0) == 0

    def test_check_integrity_detects_drift(self, factory):
        buffer = NodeBuffer()
        packet = factory.create(source=0, destination=5, size=100)
        buffer.add(packet)
        buffer._used += 1  # corrupt on purpose
        with pytest.raises(BufferError_):
            buffer.check_integrity()
