#!/usr/bin/env python3
"""Parallel, cached Figure-4-style sweep through the experiment engine.

Declares the paper's trace-driven protocol comparison as a
:class:`~repro.engine.ScenarioGrid` (four protocols x three loads x every
DieselNet day), fans the cells out over worker processes, and caches each
cell's result on disk — so a second run of this script (or any other
sweep that shares cells with it) completes without simulating anything.

Run with:  python examples/parallel_sweep.py
"""

from __future__ import annotations

import sys
import time

from repro import units
from repro.engine import ExperimentEngine, ScenarioGrid
from repro.experiments.config import TraceExperimentConfig, standard_protocols

LOADS = (2.0, 6.0, 12.0)
WORKERS = 4
CACHE_DIR = ".repro-cache"


def progress(done: int, total: int, spec) -> None:
    print(f"\r  cells {done}/{total} ({spec.label} @ {spec.load:g})", end="", file=sys.stderr)
    if done == total:
        print(file=sys.stderr)


def main() -> None:
    grid = ScenarioGrid(
        config=TraceExperimentConfig.ci_scale(),
        protocols=standard_protocols(metric="average_delay"),
        loads=LOADS,
    )
    engine = ExperimentEngine(workers=WORKERS, cache_dir=CACHE_DIR, progress=progress)

    print(f"Sweeping {len(grid)} cells with {WORKERS} workers (cache: {CACHE_DIR})")
    started = time.perf_counter()
    with engine:
        series = engine.sweep_series(grid, "average_delay")
    elapsed = time.perf_counter() - started

    print(f"\nFigure 4 (ci scale): average delay [min] vs load {LOADS}")
    for label, values in series.items():
        formatted = "  ".join(f"{v / units.MINUTE:8.2f}" for v in values)
        print(f"  {label:<16} {formatted}")

    stats = engine.stats
    print(
        f"\n{stats.cells_total} cells in {elapsed:.2f}s — "
        f"{stats.cells_executed} simulated, {stats.cache_hits} served from cache."
    )
    if stats.cache_hits == stats.cells_total:
        print("Fully cached: re-run after changing LOADS to see partial reuse.")
    else:
        print("Run me again: the sweep should come back almost instantly.")


if __name__ == "__main__":
    main()
