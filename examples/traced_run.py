#!/usr/bin/env python3
"""Traced run: watch one simulation happen, then replay it.

Runs RAPID over a small synthetic DTN with full observability on — a
lifecycle trace collected in memory, a JSONL trace written to disk and
a 60-second metrics sampler — then demonstrates the three ways to look
at what happened:

* the metrics time-series attached to ``SimulationResult.metrics``
  (buffer occupancy, in-flight replicas, delivery rate over time);
* the trace inspector views (`repro-dtn inspect` uses the same
  functions): overview, one packet's timeline, the per-node summary;
* the zero-perturbation check — the same cell re-run with observability
  off produces byte-identical headline output.

Run with:  python examples/traced_run.py
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

from repro import (
    ExponentialMobility,
    PoissonWorkload,
    create_factory,
    run_simulation,
    units,
)
from repro.observability import JsonlSink, MemorySink
from repro.observability.inspect import (
    load_trace,
    node_summary,
    packet_timeline,
    trace_overview,
)

NUM_NODES = 10
DURATION = 10 * units.MINUTE
BUFFER_CAPACITY = 30 * units.KB
METRICS_INTERVAL = 60.0


def build_inputs():
    mobility = ExponentialMobility(
        num_nodes=NUM_NODES,
        mean_inter_meeting=90.0,
        transfer_opportunity=60 * units.KB,
        seed=1,
    )
    schedule = mobility.generate(DURATION)
    workload = PoissonWorkload(packets_per_hour=240.0, seed=2)
    packets = workload.generate(range(NUM_NODES), DURATION)
    return schedule, packets


def main() -> None:
    schedule, packets = build_inputs()

    # ------------------------------------------------------------------
    # 1. An instrumented run: in-memory trace + sampled metrics.
    # ------------------------------------------------------------------
    sink = MemorySink()
    result = run_simulation(
        schedule,
        packets,
        create_factory("rapid"),
        buffer_capacity=BUFFER_CAPACITY,
        seed=3,
        options={"trace_sink": sink, "metrics_interval": METRICS_INTERVAL},
    )
    print(f"Ran {len(packets)} packets over {len(schedule)} meetings: "
          f"{result.delivery_rate():.1%} delivered, {len(sink.events)} trace events")

    metrics = result.metrics
    print(f"\nMetrics: {len(metrics['times'])} samples at "
          f"{metrics['interval']:g}s simulated intervals")
    print(f"{'t':>6} {'buffered KB':>12} {'replicas':>9} {'delivered':>10}")
    for i, t in enumerate(metrics["times"]):
        print(f"{t:>6.0f} {metrics['series']['buffer_bytes_total'][i] / units.KB:>12.1f} "
              f"{metrics['series']['replicas_in_flight'][i]:>9.0f} "
              f"{metrics['series']['delivery_rate'][i]:>10.1%}")
    utility = metrics["histograms"]["rapid_utility"]
    print(f"\nRAPID replication utility: n={utility['count']}, "
          f"mean={utility['mean']:.2f}, buckets={utility['buckets']}")

    # ------------------------------------------------------------------
    # 2. Replay the trace from disk, exactly as `repro-dtn inspect` does.
    # ------------------------------------------------------------------
    with tempfile.TemporaryDirectory(prefix="repro-traced-run-") as tmp:
        trace_path = Path(tmp) / "trace.jsonl"
        with JsonlSink(trace_path) as file_sink:
            for event in sink.events:
                file_sink.emit(event)
        events = load_trace(trace_path)

        print(f"\n--- trace overview ({trace_path.name}) ---")
        print(trace_overview(events))

        delivered = [e["packet"] for e in events if e["ev"] == "packet_delivered"]
        if delivered:
            print(f"\n--- packet {delivered[0]} timeline ---")
            print(packet_timeline(events, int(delivered[0])))

        print("\n--- per-node summary ---")
        print(node_summary(events))

    # ------------------------------------------------------------------
    # 3. Observation did not perturb the run.
    # ------------------------------------------------------------------
    plain = run_simulation(
        schedule,
        packets,
        create_factory("rapid"),
        buffer_capacity=BUFFER_CAPACITY,
        seed=3,
    )
    headline = result.to_dict()
    headline.pop("metrics")
    identical = json.dumps(headline, sort_keys=True) == json.dumps(
        plain.to_dict(), sort_keys=True
    )
    print(f"\nInstrumented and plain runs byte-identical: {identical}")
    assert identical


if __name__ == "__main__":
    main()
