#!/usr/bin/env python3
"""Duration sweep across contact models: interruption studies on DieselNet.

The paper treats every transfer opportunity as a point event; the
durational contact layer lets the same DieselNet day traces run with real
contact windows.  This example declares one
:class:`~repro.engine.ScenarioGrid` whose outermost axis sweeps the
contact model — ``instantaneous`` vs ``durational`` vs ``interruptible``
(with and without resume) — and compares what interruption does to
delivery rate, delay and wasted capacity at increasing interruption
pressure.

Run with:  python examples/interrupted_contacts.py
"""

from __future__ import annotations

from repro import units
from repro.engine import ExperimentEngine, ScenarioGrid
from repro.experiments.config import ProtocolSpec, TraceExperimentConfig

LOAD = 6.0  # packets per hour per destination
PROTOCOL = ProtocolSpec("Rapid", "rapid", {"metric": "average_delay", "label": "Rapid"})


def run_grid(engine: ExperimentEngine, contact_model, interrupt_probability=0.25, resume=False):
    """Run every DieselNet day under one contact model; return its cells+results."""
    grid = ScenarioGrid(
        config=TraceExperimentConfig.ci_scale(),
        protocols=[PROTOCOL],
        loads=(LOAD,),
        contact_models=(contact_model,),
        contact_options=(
            {
                "contact_interrupt_probability": interrupt_probability,
                "contact_resume": resume,
            }
            if contact_model == "interruptible"
            else None
        ),
    )
    return engine.run_grid(grid)


def describe(label: str, results) -> None:
    packets = sum(r.num_packets for r in results)
    delivered = sum(r.num_delivered for r in results)
    delay = sum(r.average_delay() * max(r.num_delivered, 1) for r in results) / max(delivered, 1)
    print(
        f"  {label:<34} delivery {delivered / max(packets, 1):6.1%}   "
        f"avg delay {delay / units.MINUTE:6.2f} min   "
        f"contacts cut {sum(r.contacts_interrupted for r in results):4d}   "
        f"transfers cut {sum(r.transfers_interrupted for r in results):4d}   "
        f"resumed {sum(r.transfers_resumed for r in results):3d}   "
        f"wasted {sum(r.partial_bytes_wasted for r in results) / units.KB:7.1f} KB"
    )


def main() -> None:
    print(f"RAPID over the DieselNet day traces at load {LOAD:g} pkt/h/destination\n")
    with ExperimentEngine(workers=1) as engine:
        print("Contact models:")
        describe("instantaneous (paper default)", run_grid(engine, "instantaneous"))
        describe("durational (real windows)", run_grid(engine, "durational"))
        for probability in (0.25, 0.5, 0.75):
            describe(
                f"interruptible p={probability:.2f}",
                run_grid(engine, "interruptible", probability),
            )
            describe(
                f"interruptible p={probability:.2f} + resume",
                run_grid(engine, "interruptible", probability, resume=True),
            )
    print(
        "\nInterruption wastes partially transferred bytes; resume recovers"
        "\nthem on the next contact of the same pair (wasted KB drops to 0)."
    )


if __name__ == "__main__":
    main()
