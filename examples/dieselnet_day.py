#!/usr/bin/env python3
"""Replay a synthetic DieselNet operating day with RAPID (deployment style).

Mirrors Section 5 of the paper: buses generate 1 KB packets for every other
bus on the road with exponential inter-arrival times, RAPID routes them
with its in-band control channel, and we report the Table 3-style daily
statistics plus a per-bus breakdown.  A second run with deployment noise
(jittered capacities, missed meetings, processing delay) emulates the real
system for a Figure 3-style validation.

Run with:  python examples/dieselnet_day.py
"""

from __future__ import annotations

from repro import DeploymentNoise, PoissonWorkload, create_factory, run_simulation, units
from repro.traces.dieselnet import DieselNetParameters, DieselNetTraceGenerator

LOAD_PACKETS_PER_HOUR = 4.0  # the deployment's default load
DEADLINE = 30 * units.MINUTE


def main() -> None:
    parameters = DieselNetParameters(
        num_buses=16,
        avg_buses_per_day=11,
        day_duration=4 * units.HOUR,
        avg_meetings_per_day=110,
        avg_bytes_per_day=110 * 200 * units.KB,
        num_routes=4,
    )
    generator = DieselNetTraceGenerator(parameters, seed=11)
    day = generator.generate_day(day_index=0)
    workload = PoissonWorkload(
        packets_per_hour=LOAD_PACKETS_PER_HOUR, deadline=DEADLINE, seed=12
    )
    packets = workload.generate(day.buses_on_road, day.schedule.duration)

    factory = create_factory("rapid", metric="average_delay")
    clean = run_simulation(day.schedule, packets, factory, seed=13)
    noisy = run_simulation(
        day.schedule,
        packets,
        create_factory("rapid", metric="average_delay"),
        seed=13,
        noise=DeploymentNoise(capacity_jitter=0.15, meeting_miss_probability=0.05, processing_delay=5.0),
    )

    print("Synthetic DieselNet day (Table 3-style statistics)")
    print(f"  buses on the road              {len(day.buses_on_road)}")
    print(f"  bus-to-bus meetings            {day.num_meetings}")
    print(f"  total transfer capacity        {units.format_bytes(day.total_bytes)}")
    print(f"  packets generated              {clean.num_packets}")
    print(f"  percentage delivered           {clean.delivery_rate():.1%}")
    print(f"  average delivery delay         {units.format_duration(clean.average_delay())}")
    print(f"  metadata / bandwidth           {clean.summary()['metadata_fraction_of_bandwidth']:.4f}")
    print(f"  metadata / data                {clean.metadata_fraction_of_data():.3f}")

    gap = abs(clean.average_delay() - noisy.average_delay()) / max(clean.average_delay(), 1e-9)
    print("\nSimulator validation (Figure 3 methodology)")
    print(f"  clean simulator average delay  {units.format_duration(clean.average_delay())}")
    print(f"  emulated deployment delay      {units.format_duration(noisy.average_delay())}")
    print(f"  relative gap                   {gap:.1%}")

    print("\nPer-bus delivery breakdown (top 5 by packets received):")
    counters = sorted(
        clean.node_counters.items(), key=lambda kv: kv[1].packets_delivered_here, reverse=True
    )[:5]
    for bus, stats in counters:
        print(
            f"  bus {bus:>2}: delivered_here={stats.packets_delivered_here:<4} "
            f"sent={stats.packets_sent:<5} received={stats.packets_received:<5} "
            f"meetings={stats.meetings}"
        )


if __name__ == "__main__":
    main()
