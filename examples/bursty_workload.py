"""Traffic shape matters: the same mean load under different workloads.

The paper's delay-vs-load curves turn one traffic knob — the mean rate.
This example holds the mean load *fixed* and varies everything else
about the traffic through the workload subsystem:

1. sweep the workload axis (uniform / bursty / zipf) over a RAPID vs
   Random grid and compare delivery and delay — burstiness and
   destination skew move the curves even though the offered load never
   changes;
2. run one multi-class cell (deadline-stamped "news" vs large "bulk"
   packets) and print the per-class metric breakdown.

Run with::

    PYTHONPATH=src python examples/bursty_workload.py
"""

from __future__ import annotations

from repro import units
from repro.engine import ExperimentEngine, ScenarioGrid
from repro.experiments.config import ProtocolSpec, SyntheticExperimentConfig
from repro.workloads import TrafficClass, WorkloadParameters

WORKLOADS = ("uniform", "bursty", "zipf")
LOAD = 6.0  # packets per 50 s per destination — identical for every model


def base_config() -> SyntheticExperimentConfig:
    """A small synthetic scenario with a bursty-friendly parameterisation."""
    return SyntheticExperimentConfig(
        num_nodes=10,
        mean_inter_meeting=70.0,
        transfer_opportunity=100 * units.KB,
        duration=6 * units.MINUTE,
        buffer_capacity=40 * units.KB,
        deadline=30.0,
        packet_interval=50.0,
        mobility="exponential",
        num_runs=2,
        seed=11,
        # Short burst cycles so the 6-minute run sees many ON/OFF phases.
        workload=WorkloadParameters(burstiness=6.0, burst_cycle=60.0, zipf_alpha=1.2),
    )


def sweep_workload_axis() -> None:
    """One labelled series per workload model, same mean load throughout."""
    grid = ScenarioGrid(
        config=base_config(),
        protocols=[
            ProtocolSpec(label="Rapid", registry_name="rapid"),
            ProtocolSpec(label="Random", registry_name="random"),
        ],
        loads=(LOAD,),
        workloads=WORKLOADS,
    )
    print(f"Workload axis at fixed load {LOAD:g} packets/interval/destination")
    print(f"{'workload':>10s} {'protocol':>8s} {'delivery':>9s} {'avg delay':>10s}")
    with ExperimentEngine(workers=1) as engine:
        cells = grid.cells()
        results = engine.run_cells(cells)
    # Cells expand workloads (outer) then protocols then the two runs;
    # average the runs of each (workload, protocol) group in order.
    runs_per_group = 2
    index = 0
    for workload in WORKLOADS:
        for protocol in ("Rapid", "Random"):
            runs = results[index : index + runs_per_group]
            index += runs_per_group
            delivery = sum(r.delivery_rate() for r in runs) / len(runs)
            delay = sum(r.average_delay() for r in runs) / len(runs)
            print(f"{workload:>10s} {protocol:>8s} {delivery:>9.3f} {delay:>9.1f}s")


def multi_class_cell() -> None:
    """Deadline-stamped news vs bulk transfers, split per class."""
    config = base_config().with_workload(
        WorkloadParameters(
            model="poisson",
            classes=(
                TrafficClass("news", weight=3.0, deadline=25.0, priority=1),
                TrafficClass("bulk", weight=1.0, size=4 * units.KB),
            ),
        )
    )
    grid = ScenarioGrid(
        config=config,
        protocols=[ProtocolSpec(label="Rapid", registry_name="rapid")],
        loads=(LOAD,),
        run_indices=(0,),
    )
    with ExperimentEngine(workers=1) as engine:
        result = engine.run_grid(grid)[0]
    print()
    print("Multi-class cell (RAPID): per-class breakdown")
    print(f"{'class':>6s} {'packets':>8s} {'delivery':>9s} {'avg delay':>10s} {'in deadline':>12s}")
    for name, row in sorted(result.per_class_summary().items()):
        print(
            f"{name:>6s} {row['packets']:>8.0f} {row['delivery_rate']:>9.3f} "
            f"{row['average_delay']:>9.1f}s {row['deadline_success_rate']:>12.3f}"
        )


def main() -> None:
    """Run both studies."""
    sweep_workload_axis()
    multi_class_cell()


if __name__ == "__main__":
    main()
