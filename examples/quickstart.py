#!/usr/bin/env python3
"""Quickstart: route packets with RAPID over a small synthetic DTN.

Builds a 12-node DTN with exponential inter-meeting times, generates a
Poisson workload, runs RAPID alongside three baselines under identical
bandwidth and storage constraints, and prints the headline metrics the
paper evaluates (delivery rate, average/max delay, deadline success,
control-channel overhead).

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    ExponentialMobility,
    PoissonWorkload,
    create_factory,
    run_simulation,
    units,
)

NUM_NODES = 12
DURATION = 15 * units.MINUTE
MEAN_INTER_MEETING = 2 * units.MINUTE
TRANSFER_OPPORTUNITY = 100 * units.KB
BUFFER_CAPACITY = 50 * units.KB
LOAD_PACKETS_PER_HOUR = 60.0
DEADLINE = 3 * units.MINUTE
PROTOCOLS = ("rapid", "maxprop", "spray-and-wait", "random")


def main() -> None:
    mobility = ExponentialMobility(
        num_nodes=NUM_NODES,
        mean_inter_meeting=MEAN_INTER_MEETING,
        transfer_opportunity=TRANSFER_OPPORTUNITY,
        seed=1,
    )
    schedule = mobility.generate(DURATION)
    workload = PoissonWorkload(
        packets_per_hour=LOAD_PACKETS_PER_HOUR, deadline=DEADLINE, seed=2
    )
    packets = workload.generate(range(NUM_NODES), DURATION)

    print(f"Scenario: {NUM_NODES} nodes, {len(schedule)} meetings, {len(packets)} packets")
    print(f"{'protocol':<16} {'delivered':>9} {'avg delay':>10} {'max delay':>10} "
          f"{'deadline':>9} {'metadata/data':>14}")
    for name in PROTOCOLS:
        result = run_simulation(
            schedule,
            packets,
            create_factory(name),
            buffer_capacity=BUFFER_CAPACITY,
            seed=3,
        )
        print(
            f"{name:<16} {result.delivery_rate():>9.2%} "
            f"{units.format_duration(result.average_delay()):>10} "
            f"{units.format_duration(result.max_delay()):>10} "
            f"{result.deadline_success_rate():>9.2%} "
            f"{result.metadata_fraction_of_data():>14.3f}"
        )


if __name__ == "__main__":
    main()
