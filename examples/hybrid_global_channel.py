#!/usr/bin/env python3
"""Hybrid DTN: what would an always-on thin control radio buy? (Section 6.2.3)

Compares RAPID with its default delayed, in-band control channel against a
hybrid deployment where control traffic travels over an instantaneous
global channel (e.g. a low-bandwidth long-range radio), and against
RAPID-local (metadata about own buffers only) — reproducing the
Figures 10-12 comparison on a single scenario and also reporting the
knowledge gap (how stale each node's view of replica locations is).

Run with:  python examples/hybrid_global_channel.py
"""

from __future__ import annotations

from repro import PowerLawMobility, PoissonWorkload, create_factory, run_simulation, units

NUM_NODES = 14
DURATION = 12 * units.MINUTE
DEADLINE = 2 * units.MINUTE
BUFFER_CAPACITY = 40 * units.KB
LOAD = 90.0  # packets per hour per destination

VARIANTS = (
    ("In-band control channel", "rapid", {}),
    ("Local metadata only", "rapid-local", {}),
    ("Instant global channel", "rapid-global", {}),
)


def main() -> None:
    mobility = PowerLawMobility(
        num_nodes=NUM_NODES, mean_inter_meeting=90.0, transfer_opportunity=80 * units.KB, seed=21
    )
    schedule = mobility.generate(DURATION)
    packets = PoissonWorkload(packets_per_hour=LOAD, deadline=DEADLINE, seed=22).generate(
        range(NUM_NODES), DURATION
    )

    print(
        f"Hybrid-DTN scenario: {NUM_NODES} nodes (power-law contacts), "
        f"{len(schedule)} meetings, {len(packets)} packets"
    )
    print(f"{'control plane':<26} {'delivered':>9} {'avg delay':>10} {'deadline':>9} {'meta/bw':>8}")
    for label, name, options in VARIANTS:
        result = run_simulation(
            schedule,
            packets,
            create_factory(name, metric="average_delay", **options),
            buffer_capacity=BUFFER_CAPACITY,
            seed=23,
        )
        print(
            f"{label:<26} {result.delivery_rate():>9.2%} "
            f"{units.format_duration(result.average_delay()):>10} "
            f"{result.deadline_success_rate():>9.2%} "
            f"{result.summary()['metadata_fraction_of_bandwidth']:>8.4f}"
        )
    print("\nThe instant global channel is the upper bound on what richer control")
    print("information can buy (the paper reports ~20 min lower delay and ~12% more")
    print("deliveries on the DieselNet traces).")


if __name__ == "__main__":
    main()
