#!/usr/bin/env python3
"""Decision audit + forensics: ask a run *why*, not just *what*.

Runs RAPID over a buffer-constrained synthetic DTN with both trace
streams on — the lifecycle trace and the decision audit — then walks
the replay layers built on top of them:

* the decision audit itself: every ``replication_rank`` with its
  per-candidate marginal-utility scores, every ``eviction_choice``
  with its victim and reason;
* causal forensics for one delivered packet (`repro-dtn inspect --why`
  uses the same functions): the replication tree, the winning path and
  its waiting/queueing/transfer latency decomposition, cross-referenced
  against the decisions that ranked or evicted it;
* the delivery funnel: every created packet in exactly one terminal
  class, with back-references from fully-evicted packets to the
  evicting decisions;
* the zero-perturbation check — the same cell re-run without the audit
  produces byte-identical headline output.

Run with:  python examples/decision_audit.py
"""

from __future__ import annotations

import json

from repro import (
    ExponentialMobility,
    PoissonWorkload,
    create_factory,
    run_simulation,
    units,
)
from repro.observability import MemorySink
from repro.observability.forensics import (
    causal_chain,
    decision_references,
    delivery_funnel,
    funnel_text,
    why_text,
)

NUM_NODES = 8
DURATION = 10 * units.MINUTE
BUFFER_CAPACITY = 8 * units.KB  # tight: forces eviction decisions

def build_inputs():
    mobility = ExponentialMobility(
        num_nodes=NUM_NODES,
        mean_inter_meeting=60.0,
        transfer_opportunity=50 * units.KB,
        seed=1,
    )
    schedule = mobility.generate(DURATION)
    workload = PoissonWorkload(packets_per_hour=400.0, seed=2)
    packets = workload.generate(range(NUM_NODES), DURATION)
    return schedule, packets


def main() -> None:
    schedule, packets = build_inputs()

    # ------------------------------------------------------------------
    # 1. A fully observed run: lifecycle trace + decision audit.
    # ------------------------------------------------------------------
    trace_sink = MemorySink()
    decision_sink = MemorySink()
    result = run_simulation(
        schedule,
        packets,
        create_factory("rapid"),
        buffer_capacity=BUFFER_CAPACITY,
        seed=3,
        options={"trace_sink": trace_sink, "decision_sink": decision_sink},
    )
    events = trace_sink.events
    decisions = decision_sink.events
    print(f"Ran {len(packets)} packets: {result.delivery_rate():.1%} delivered, "
          f"{len(events)} lifecycle events, {len(decisions)} decisions")

    rankings = [d for d in decisions if d["ev"] == "replication_rank"]
    evictions = [d for d in decisions if d["ev"] == "eviction_choice"]
    print(f"  {len(rankings)} replication rankings, {len(evictions)} eviction choices")

    # One ranking, in full: the candidates RAPID weighed and how.
    sample = max(rankings, key=lambda d: len(d["candidates"]))
    print(f"\n--- widest ranking: node {sample['node']} -> peer {sample['peer']} "
          f"at t={sample['t']:.0f}s ---")
    for packet, score, marginal in zip(
        sample["candidates"], sample["score"], sample["marginal"]
    ):
        print(f"  packet {packet}: score={score:.4g} marginal-utility/byte={marginal}")

    if evictions:
        choice = evictions[0]
        print(f"\nfirst eviction: node {choice['node']} dropped packet "
              f"{choice['victim']} ({choice['reason']}) to admit {choice['incoming']}")

    # ------------------------------------------------------------------
    # 2. Forensics: why did one packet arrive when it did?
    # ------------------------------------------------------------------
    # Pick a delivered packet the audit actually ranked (direct
    # source->destination deliveries never enter a ranking).
    ranked = {p for d in rankings for p in d["candidates"]}
    delivered = next(
        e["packet"] for e in events
        if e["ev"] == "packet_delivered" and e["packet"] in ranked
    )
    print(f"\n--- why packet {delivered}? ---")
    print(why_text(events, delivered, decisions=decisions))

    chain = causal_chain(events, delivered)
    refs = decision_references(decisions, delivered)
    print(f"(programmatic: {len(chain['path'])} hops, "
          f"{chain['replicas_committed']} replicas committed, "
          f"{len(refs)} decision references)")

    # ------------------------------------------------------------------
    # 3. The delivery funnel: where did every packet end up?
    # ------------------------------------------------------------------
    print("\n--- delivery funnel ---")
    print(funnel_text(events))
    funnel = delivery_funnel(events)
    for packet in funnel["evicted_packets"][:3]:
        refs = funnel["eviction_refs"][packet]
        print(f"packet {packet} evicted everywhere; last eviction at "
              f"t={refs[-1]['t']:.0f}s on node {refs[-1]['node']}")

    # ------------------------------------------------------------------
    # 4. The audit did not perturb the run.
    # ------------------------------------------------------------------
    plain = run_simulation(
        schedule,
        packets,
        create_factory("rapid"),
        buffer_capacity=BUFFER_CAPACITY,
        seed=3,
    )
    identical = json.dumps(result.to_dict(), sort_keys=True) == json.dumps(
        plain.to_dict(), sort_keys=True
    )
    print(f"\nAudited and plain runs byte-identical: {identical}")
    assert identical


if __name__ == "__main__":
    main()
