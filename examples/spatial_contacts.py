#!/usr/bin/env python3
"""Contacts from geometry: the spatial mobility models end to end.

The paper postulates meeting processes (exponential, power-law inter-
meeting times); the spatial mobility subsystem derives them instead from
node positions — two nodes are in contact while within radio range, so
contact windows, their durations and (optionally) distance-dependent
bandwidth emerge from kinematics.  This example:

1. sweeps each spatial model (``waypoint``, ``walk``, ``grid``) and
   prints the emergent contact statistics — count, mean window duration,
   mean capacity — next to the postulated power-law baseline;
2. runs a RAPID vs Random protocol comparison over the mobility axis of
   one :class:`~repro.engine.ScenarioGrid`, the same axis the CLI
   exposes as ``repro-dtn sweep --mobility waypoint,grid ...``.

Run with:  python examples/spatial_contacts.py
"""

from __future__ import annotations

import statistics

from repro import units
from repro.engine import Aggregator, ExperimentEngine, ScenarioGrid
from repro.engine.worker import synthetic_schedule
from repro.experiments.config import ProtocolSpec, SyntheticExperimentConfig
from repro.mobility.spatial import SpatialParameters

CONFIG = SyntheticExperimentConfig(
    num_nodes=14,
    mean_inter_meeting=70.0,
    transfer_opportunity=100 * units.KB,
    duration=8 * units.MINUTE,
    buffer_capacity=60 * units.KB,
    deadline=40.0,
    packet_interval=50.0,
    mobility="powerlaw",
    spatial=SpatialParameters(
        arena_width=700.0, arena_height=700.0, radio_range=100.0
    ),
    num_runs=2,
    seed=11,
)

MOBILITIES = ("powerlaw", "waypoint", "walk", "grid")


def contact_statistics() -> None:
    """Print the emergent contact structure of every mobility model."""
    print("Contact structure per mobility model "
          f"({CONFIG.num_nodes} nodes, {CONFIG.duration:.0f} s):")
    print(f"  {'model':<10} {'contacts':>8} {'mean window':>12} {'mean capacity':>14}")
    for name in MOBILITIES:
        schedule = synthetic_schedule(CONFIG, 0, name)
        durations = [c.duration for c in schedule]
        mean_window = statistics.fmean(durations) if durations else 0.0
        print(
            f"  {name:<10} {len(schedule):>8} {mean_window:>10.1f} s "
            f"{schedule.mean_capacity() / units.KB:>11.1f} KB"
        )
    print()


def protocol_comparison() -> None:
    """Sweep the mobility axis of one grid and compare protocols."""
    grid = ScenarioGrid(
        config=CONFIG,
        protocols=[
            ProtocolSpec("Rapid", "rapid", {"metric": "average_delay", "label": "Rapid"}),
            ProtocolSpec("Random", "random"),
        ],
        loads=(6.0,),
        mobilities=MOBILITIES,
    )
    with ExperimentEngine(workers=1) as engine:
        cells = grid.cells()
        results = engine.run_cells(cells)
    print("Average delay by mobility model (load 6 packets/50 s/destination):")
    print(f"  {'model':<10} {'Rapid':>10} {'Random':>10}")
    aggregator = Aggregator("average_delay")
    for mobility in MOBILITIES:
        subset = [
            (cell, result)
            for cell, result in zip(cells, results)
            if cell.mobility == mobility
        ]
        series = aggregator.series(
            [cell for cell, _ in subset], [result for _, result in subset]
        )
        print(
            f"  {mobility:<10} {series['Rapid'][0]:>9.1f}s {series['Random'][0]:>9.1f}s"
        )
    print()
    print("Same sweep from the CLI:")
    print("  repro-dtn sweep --family synthetic --mobility waypoint,walk,grid \\")
    print("      --protocols rapid,random --loads 6")


def main() -> None:
    contact_statistics()
    protocol_comparison()


if __name__ == "__main__":
    main()
