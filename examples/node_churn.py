#!/usr/bin/env python3
"""Routing under failure: sweep the fault axis over a RAPID vs Random grid.

The paper evaluates RAPID under a clean deployment; the fault subsystem
(:mod:`repro.faults`) asks what happens when that assumption breaks.
This example runs the same synthetic grid four times — clean, node
crashes (buffers wiped), transient churn (buffers survive), and
metadata/ack loss — prints the per-model delivery and delay
degradation, then dials the crash rate up to draw a degradation curve.

Run with:  python examples/node_churn.py
"""

from __future__ import annotations

from repro import units
from repro.engine import ExperimentEngine, ScenarioGrid
from repro.experiments.config import ProtocolSpec, SyntheticExperimentConfig
from repro.faults import FaultParameters

PROTOCOLS = [ProtocolSpec("Rapid", "rapid"), ProtocolSpec("Random", "random")]
LOAD = 4.0  # packets per interval per destination


def base_config(faults: FaultParameters = FaultParameters()) -> SyntheticExperimentConfig:
    return SyntheticExperimentConfig(
        num_nodes=8,
        mean_inter_meeting=40.0,
        transfer_opportunity=50 * units.KB,
        duration=10 * units.MINUTE,
        buffer_capacity=30 * units.KB,
        deadline=60.0,
        packet_interval=50.0,
        mobility="exponential",
        num_runs=3,
        seed=11,
    ).with_faults(faults)


def run_pass(engine: ExperimentEngine, label: str, faults: FaultParameters):
    """Run the grid under one fault setting; print its accounting."""
    grid = ScenarioGrid(config=base_config(faults), protocols=PROTOCOLS, loads=(LOAD,))
    cells = grid.cells()
    results = engine.run_cells(cells)
    print(f"  {label}:")
    per_label: dict = {}
    for cell, result in zip(cells, results):
        per_label.setdefault(cell.protocol["label"], []).append(result)
    for name, group in per_label.items():
        delivery = sum(r.delivery_rate() for r in group) / len(group)
        delay = sum(r.average_delay() for r in group) / len(group)
        outages = sum(r.node_outages for r in group)
        wiped = sum(r.replicas_lost_to_crashes for r in group)
        print(
            f"    {name:<8} delivery {delivery:6.1%}   delay {delay:7.1f}s   "
            f"outages {outages:3d}   replicas wiped {wiped:3d}"
        )
    return per_label


def main() -> None:
    engine = ExperimentEngine(workers=2)

    print("== One grid, four worlds (fault rate 0.4) ==")
    run_pass(engine, "clean", FaultParameters())
    run_pass(engine, "crash (buffers wiped)", FaultParameters(model="crash", rate=0.4))
    run_pass(engine, "churn (buffers survive)", FaultParameters(model="churn", rate=0.4))
    run_pass(engine, "metadata/ack loss", FaultParameters(model="metadata", rate=0.4))

    print()
    print("== Degradation curve: RAPID delivery vs crash rate ==")
    for rate in (0.0, 0.2, 0.4, 0.6, 0.8):
        faults = FaultParameters(model="crash", rate=rate) if rate else FaultParameters()
        grid = ScenarioGrid(
            config=base_config(faults),
            protocols=[ProtocolSpec("Rapid", "rapid")],
            loads=(LOAD,),
        )
        series = engine.sweep_series(grid, "delivery_rate")
        print(f"  crash rate {rate:.1f}  ->  delivery {series['Rapid'][0]:6.1%}")

    print()
    print(
        "The same draws replay anywhere: fault schedules are pure functions\n"
        "of (parameters, seed, deployment shape), so every number above is\n"
        "byte-identical across serial, parallel and cached engine backends."
    )


if __name__ == "__main__":
    main()
