#!/usr/bin/env python3
"""News-within-a-deadline: the motivating application of the paper's intro.

"A simple news and information application is better served by maximizing
the number of news stories delivered before they are outdated, rather than
maximizing the number of stories eventually delivered."  This example
models a news feed pushed over a vehicular DTN: stories expire after a
fixed deadline, and we compare RAPID configured for the *deadline* metric
against RAPID configured for average delay and against MaxProp — showing
that the intentional choice of metric changes the outcome that matters.

Run with:  python examples/news_deadline_delivery.py
"""

from __future__ import annotations

from repro import PoissonWorkload, create_factory, run_simulation, units
from repro.traces.dieselnet import DieselNetParameters, DieselNetTraceGenerator

STORY_DEADLINE = 20 * units.MINUTE
STORIES_PER_HOUR = 10.0
BUFFER_CAPACITY = 60 * units.KB

CONTENDERS = (
    ("RAPID (deadline metric)", "rapid", {"metric": "deadline"}),
    ("RAPID (avg-delay metric)", "rapid", {"metric": "average_delay"}),
    ("MaxProp", "maxprop", {}),
    ("Spray and Wait", "spray-and-wait", {}),
)


def build_day(seed: int = 4):
    """A small bus network: one synthetic DieselNet operating day."""
    parameters = DieselNetParameters(
        num_buses=12,
        avg_buses_per_day=9,
        day_duration=3 * units.HOUR,
        avg_meetings_per_day=90,
        avg_bytes_per_day=90 * 80 * units.KB,
        num_routes=3,
    )
    generator = DieselNetTraceGenerator(parameters, seed=seed)
    return generator.generate_day(day_index=0)


def main() -> None:
    day = build_day()
    workload = PoissonWorkload(
        packets_per_hour=STORIES_PER_HOUR, deadline=STORY_DEADLINE, seed=5
    )
    stories = workload.generate(day.buses_on_road, day.schedule.duration)

    print(
        f"News scenario: {len(day.buses_on_road)} buses, {day.num_meetings} meetings, "
        f"{len(stories)} stories, {units.format_duration(STORY_DEADLINE)} freshness window"
    )
    print(f"{'router':<28} {'fresh stories':>14} {'eventually':>11} {'avg delay':>10}")
    for label, registry_name, options in CONTENDERS:
        result = run_simulation(
            day.schedule,
            stories,
            create_factory(registry_name, **options),
            buffer_capacity=BUFFER_CAPACITY,
            seed=6,
        )
        print(
            f"{label:<28} {result.deadline_success_rate():>14.2%} "
            f"{result.delivery_rate():>11.2%} "
            f"{units.format_duration(result.average_delay()):>10}"
        )
    print("\n'fresh stories' = fraction delivered before the freshness window closes;")
    print("the deadline-metric router maximises exactly this quantity.")


if __name__ == "__main__":
    main()
