"""Benchmark gate: streaming results stay bounded on long horizons.

The steady-state engine's claim is that ``result_mode="streaming"``
makes the *results layer* O(1) in the horizon: a run four times as long
produces the same fixed-size summary, while records mode grows linearly
with the packet population.  This gate runs one long-horizon cell at two
scales (the larger is the same traffic intensity over a 4x horizon; the
full, non-``--quick`` mode pushes the large scale to a million packets)
in both result modes and asserts:

1. **Differential correctness** — at every scale the streaming run's
   integer counters equal the records run's exactly, float aggregates
   agree to addition-order rounding, and every delay quantile estimate
   is within the sketch's documented relative-error bound of the exact
   per-record quantile.
2. **Bounded payload** — the streaming result payload stays under a
   fixed byte ceiling at both scales and essentially flat across the 4x
   horizon, while the records payload grows with the traffic.
3. **Bounded retained memory** — rebuilding the result object from its
   payload (the deserialized form every analysis consumer holds)
   allocates under a fixed ceiling in streaming mode and essentially
   flat across scales, while records mode grows with the traffic.

Everything lands in ``benchmarks/results/BENCH_steady_state.json`` and
is diffed by ``scripts/bench_compare.py`` across commits.

Usage::

    PYTHONPATH=src python benchmarks/bench_steady_state.py [--quick]
    PYTHONPATH=src python -m pytest benchmarks/bench_steady_state.py -q
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import tracemalloc
from pathlib import Path
from typing import Dict, Optional, Sequence

sys.path.insert(0, str(Path(__file__).parent))

import numpy as np

from repro import units
from repro.analysis.streaming import MIN_TRACKABLE_DELAY
from repro.dtn.results import (
    RESULT_MODE_RECORDS,
    RESULT_MODE_STREAMING,
    SimulationResult,
)
from repro.dtn.simulator import run_simulation
from repro.mobility.exponential import ExponentialMobility
from repro.routing.registry import create_factory
from repro.workloads import PoissonArrivals

from bench_config import emit_bench_json

#: The streaming payload may never exceed this many canonical-JSON bytes,
#: at any horizon (sketch buckets + class tallies + 512 rate windows).
PAYLOAD_CEILING_BYTES = 128 * 1024
#: Rebuilding a streaming result from its payload must allocate at most
#: this much (the retained, results-layer footprint of a consumer).
RETAINED_CEILING_BYTES = 8 * 1024 * 1024
#: "Flat": the 4x-horizon run may grow the streaming payload/footprint by
#: at most this factor (bucket tables fill in a little; windows decimate).
FLAT_GROWTH_CEILING = 1.5
#: Records mode must demonstrate the contrast: at least this growth
#: across the 4x horizon (linear would be ~4x).
RECORDS_GROWTH_FLOOR = 2.0

#: Quantiles checked against the exact per-record answer.
QUANTILES = (0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99)

#: Long-horizon cell shape: same traffic intensity, two horizons.
NUM_NODES = 10
MEAN_INTER_MEETING_S = 60.0
PACKETS_PER_HOUR = 450.0
DEADLINE_S = 90.0
QUICK_BASE_HORIZON_S = 1800.0
FULL_BASE_HORIZON_S = 22500.0  # 4x horizon lands around a million packets
HORIZON_FACTOR = 4.0


def _canonical(payload) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _cell_inputs(duration: float):
    mobility = ExponentialMobility(
        num_nodes=NUM_NODES,
        mean_inter_meeting=MEAN_INTER_MEETING_S,
        transfer_opportunity=60 * units.KB,
        seed=3,
    )
    schedule = mobility.generate(duration)
    workload = PoissonArrivals(
        packets_per_hour=PACKETS_PER_HOUR, seed=4, deadline=DEADLINE_S
    )
    packets = workload.generate(range(NUM_NODES), duration)
    return schedule, packets


def _run_mode(schedule, packets, result_mode: str):
    """Run the cell in one result mode; returns (result, wall seconds)."""
    options = (
        {"result_mode": result_mode} if result_mode != RESULT_MODE_RECORDS else None
    )
    started = time.perf_counter()
    result = run_simulation(
        schedule,
        packets,
        create_factory("direct"),
        seed=5,
        options=options,
    )
    return result, time.perf_counter() - started


def _retained_bytes(payload_text: str) -> int:
    """Peak allocation of rebuilding a result from its serialized form."""
    data = json.loads(payload_text)
    tracemalloc.start()
    try:
        result = SimulationResult.from_dict(data)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    del result
    return peak


def _differential_check(records: SimulationResult, streaming: SimulationResult) -> None:
    assert records.num_packets > 0, "the benchmark cell generated no traffic"
    assert streaming.num_packets == records.num_packets, "packet counters differ"
    assert streaming.num_delivered == records.num_delivered, "delivery counters differ"
    assert streaming.replications == records.replications, "replication counters differ"
    assert abs(streaming.average_delay() - records.average_delay()) <= 1e-9 * max(
        1.0, records.average_delay()
    ), "average delay differs beyond addition-order rounding"

    delays = np.asarray(records.delays(), dtype=float)
    sketch = streaming.streaming.delay_sketch
    assert sketch.count == delays.size, "sketch count differs from record delays"
    for q in QUANTILES:
        exact = float(np.quantile(delays, q, method="inverted_cdf"))
        estimate = streaming.delay_quantile(q)
        bound = sketch.relative_error * exact + MIN_TRACKABLE_DELAY + 1e-9 * max(1.0, exact)
        assert abs(estimate - exact) <= bound, (
            f"q={q} estimate {estimate} outside the sketch bound of exact {exact}"
        )


def _scale_point(duration: float) -> Dict[str, object]:
    """Both modes at one horizon, with the differential check applied."""
    schedule, packets = _cell_inputs(duration)
    records, records_s = _run_mode(schedule, packets, RESULT_MODE_RECORDS)
    streaming, streaming_s = _run_mode(schedule, packets, RESULT_MODE_STREAMING)
    _differential_check(records, streaming)

    records_text = _canonical(records.to_dict())
    streaming_text = _canonical(streaming.to_dict())
    return {
        "horizon_s": duration,
        "packets": records.num_packets,
        "delivered": records.num_delivered,
        "records_wall_time_s": round(records_s, 6),
        "streaming_wall_time_s": round(streaming_s, 6),
        "records_payload_bytes": len(records_text),
        "streaming_payload_bytes": len(streaming_text),
        "records_retained_bytes": _retained_bytes(records_text),
        "streaming_retained_bytes": _retained_bytes(streaming_text),
        "sketch_buckets": streaming.streaming.delay_sketch.num_buckets,
        "rate_windows": streaming.streaming.rate_windows.num_windows,
    }


def run_gate(quick: bool) -> Dict[str, object]:
    """Run the full gate; return the BENCH payload (raises on regression)."""
    base = QUICK_BASE_HORIZON_S if quick else FULL_BASE_HORIZON_S
    small = _scale_point(base)
    large = _scale_point(base * HORIZON_FACTOR)

    def ratio(key: str) -> float:
        return large[key] / small[key] if small[key] else float("inf")

    payload = {
        "mode": "quick" if quick else "full",
        "payload_ceiling_bytes": PAYLOAD_CEILING_BYTES,
        "retained_ceiling_bytes": RETAINED_CEILING_BYTES,
        "flat_growth_ceiling": FLAT_GROWTH_CEILING,
        "small": small,
        "large": large,
        "streaming_payload_growth": round(ratio("streaming_payload_bytes"), 4),
        "records_payload_growth": round(ratio("records_payload_bytes"), 4),
        "streaming_retained_growth": round(ratio("streaming_retained_bytes"), 4),
        "records_retained_growth": round(ratio("records_retained_bytes"), 4),
        "wall_time_s": round(
            small["streaming_wall_time_s"] + large["streaming_wall_time_s"], 6
        ),
    }
    emit_bench_json("steady_state", payload)

    for point in (small, large):
        assert point["streaming_payload_bytes"] <= PAYLOAD_CEILING_BYTES, (
            f"streaming payload {point['streaming_payload_bytes']}B at horizon "
            f"{point['horizon_s']}s exceeds the {PAYLOAD_CEILING_BYTES}B ceiling"
        )
        assert point["streaming_retained_bytes"] <= RETAINED_CEILING_BYTES, (
            f"streaming retained footprint {point['streaming_retained_bytes']}B "
            f"at horizon {point['horizon_s']}s exceeds the ceiling"
        )
    assert payload["streaming_payload_growth"] <= FLAT_GROWTH_CEILING, (
        f"streaming payload grew {payload['streaming_payload_growth']}x across "
        f"the {HORIZON_FACTOR}x horizon (ceiling {FLAT_GROWTH_CEILING}x)"
    )
    assert payload["streaming_retained_growth"] <= FLAT_GROWTH_CEILING, (
        f"streaming retained footprint grew {payload['streaming_retained_growth']}x "
        f"across the {HORIZON_FACTOR}x horizon (ceiling {FLAT_GROWTH_CEILING}x)"
    )
    assert payload["records_payload_growth"] >= RECORDS_GROWTH_FLOOR, (
        "records payload did not grow with the horizon — the contrast the "
        "streaming mode exists to fix has disappeared; check the cell shape"
    )
    return payload


def test_steady_state_gate():
    """Pytest entry point (quick mode keeps bench suites fast)."""
    payload = run_gate(quick=True)
    print(json.dumps(payload, indent=2, sort_keys=True))


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller horizons for CI smoke runs; the full run's large "
        "scale is a million-packet cell",
    )
    args = parser.parse_args(argv)
    payload = run_gate(quick=args.quick)
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
