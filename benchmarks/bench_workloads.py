"""Benchmark: traffic workload generation throughput.

The workload subsystem sits on the input path of every simulation cell,
so the cost that matters is ``generate()`` — drawing arrivals,
destinations and classes for a full node population over a horizon.
This bench times one ``generate()`` per registered model (plus a
multi-class uniform variant) and records throughput in *packets per
second of wall time* together with the packet counts, then runs one
end-to-end bursty RAPID cell through the engine for scale.  Determinism
is asserted along the way: every model must produce an identical packet
list on a repeat run, and the ``uniform`` model must stay byte-identical
to the historic ``PoissonWorkload`` generator.

Everything lands in ``benchmarks/results/BENCH_workloads.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_workloads.py [--quick]
    PYTHONPATH=src python -m pytest benchmarks/bench_workloads.py -q
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, Optional, Sequence

sys.path.insert(0, str(Path(__file__).parent))

from repro import units
from repro.dtn.workload import PoissonWorkload
from repro.engine import ExperimentEngine
from repro.engine.spec import ScenarioSpec
from repro.experiments.config import ProtocolSpec, SyntheticExperimentConfig
from repro.workloads import (
    TrafficClass,
    WORKLOAD_MODEL_NAMES,
    WorkloadParameters,
    build_traffic_model,
)

from bench_config import emit_bench_json

#: Wall times are the best of this many runs (denoising).
REPEATS = 3


def _packet_signature(packets) -> tuple:
    return tuple(
        (p.packet_id, p.source, p.destination, p.size, p.creation_time, p.traffic_class)
        for p in packets
    )


def _time_generate(
    name: str,
    params: WorkloadParameters,
    num_nodes: int,
    duration: float,
    rate: float,
) -> Dict[str, object]:
    """Time one model's generation; assert repeat-run determinism."""
    best = float("inf")
    signature = None
    count = 0
    for _ in range(REPEATS):
        model = build_traffic_model(
            params,
            packets_per_hour=rate,
            packet_size=1024,
            seed=42,
            model=name,
        )
        started = time.perf_counter()
        packets = model.generate(list(range(num_nodes)), duration)
        elapsed = time.perf_counter() - started
        best = min(best, elapsed)
        current = _packet_signature(packets)
        assert signature is None or current == signature, (
            f"{name}: repeat generate() produced a different workload"
        )
        signature = current
        count = len(packets)
    return {
        "packets": count,
        "wall_time_s": round(best, 6),
        "packets_per_s": round(count / best, 1) if best > 0 else None,
    }


def _assert_default_identity(num_nodes: int, duration: float, rate: float) -> None:
    """The uniform model must match the historic generator byte for byte."""
    legacy = PoissonWorkload(packets_per_hour=rate, packet_size=1024, seed=42).generate(
        list(range(num_nodes)), duration
    )
    modern = build_traffic_model(
        WorkloadParameters(), packets_per_hour=rate, packet_size=1024, seed=42
    ).generate(list(range(num_nodes)), duration)
    assert modern == legacy, "uniform workload diverged from the historic generator"


def _end_to_end_cell(quick: bool) -> Dict[str, object]:
    """One bursty RAPID cell through the engine, for whole-stack scale."""
    config = SyntheticExperimentConfig(
        num_nodes=10 if quick else 20,
        mean_inter_meeting=70.0,
        transfer_opportunity=100 * units.KB,
        duration=(4 if quick else 10) * units.MINUTE,
        buffer_capacity=60 * units.KB,
        deadline=30.0,
        packet_interval=50.0,
        mobility="exponential",
        num_runs=1,
        seed=11,
        workload=WorkloadParameters(model="bursty", burst_cycle=60.0),
    )
    spec = ScenarioSpec.for_cell(
        config=config,
        protocol=ProtocolSpec(label="rapid", registry_name="rapid"),
        load=6.0,
        run_index=0,
    )
    started = time.perf_counter()
    with ExperimentEngine(workers=1) as engine:
        result = engine.run_cells([spec])[0]
    elapsed = time.perf_counter() - started
    return {
        "workload": "bursty",
        "packets": result.num_packets,
        "wall_time_s": round(elapsed, 6),
    }


def run_bench(quick: bool) -> Dict[str, object]:
    """Run the throughput sweep; return (and emit) the BENCH payload."""
    num_nodes = 20 if quick else 40
    duration = (2 if quick else 8) * units.HOUR
    rate = 8.0  # packets per hour per destination
    models: Dict[str, Dict[str, object]] = {}
    for name in WORKLOAD_MODEL_NAMES:
        models[name] = _time_generate(
            name, WorkloadParameters(), num_nodes, duration, rate
        )
    models["uniform_multiclass"] = _time_generate(
        "uniform",
        WorkloadParameters(
            classes=(
                TrafficClass("news", weight=3.0, deadline=300.0, priority=1),
                TrafficClass("bulk", weight=1.0, size=4096),
            )
        ),
        num_nodes,
        duration,
        rate,
    )
    _assert_default_identity(num_nodes, duration, rate)
    payload = {
        "mode": "quick" if quick else "full",
        "num_nodes": num_nodes,
        "duration_s": duration,
        "packets_per_hour_per_destination": rate,
        "generation": models,
        "end_to_end_cell": _end_to_end_cell(quick),
    }
    emit_bench_json("workloads", payload)
    return payload


def test_workloads_bench():
    """Pytest entry point (quick mode keeps bench suites fast)."""
    payload = run_bench(quick=True)
    print(json.dumps(payload, indent=2, sort_keys=True))


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller population and shorter horizon for CI smoke runs",
    )
    args = parser.parse_args(argv)
    payload = run_bench(quick=args.quick)
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
