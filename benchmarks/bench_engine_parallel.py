"""Benchmark: multiprocess fan-out and result-cache speedup of the engine.

Runs a paper-style sweep grid — every standard protocol at several loads
over several DieselNet day traces — three ways:

1. serially (``workers=1``),
2. fanned out over four worker processes (``workers=4``),
3. serially again against a warm on-disk result cache.

The wall-clock times and speedups land in ``BENCH_engine_parallel.json``.
The >= 2x parallel-speedup assertion only applies on hosts with at least
four CPU cores; single-core CI containers still execute the benchmark
(verifying the backends agree) and record their numbers.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.engine import ExperimentEngine, ScenarioGrid
from repro.engine import worker as cell_worker
from repro.experiments.config import TraceExperimentConfig, standard_protocols

from bench_config import emit_bench_json

GRID_LOADS = (2.0, 6.0, 12.0)
NUM_DAYS = 2
PARALLEL_WORKERS = 4


def _timed_run(engine: ExperimentEngine, grid: ScenarioGrid, warmup: bool = False):
    with engine:
        if warmup:
            # Untimed pass: starts the worker pool and fills every worker's
            # input memo, so the timed pass measures simulation throughput
            # on both backends alike (under the spawn start method a cold
            # pool would otherwise pay imports + regeneration inside the
            # timed window).
            engine.sweep_series(grid, "average_delay")
        started = time.perf_counter()
        series = engine.sweep_series(grid, "average_delay")
        return series, time.perf_counter() - started


def test_engine_parallel_speedup(tmp_path):
    config = TraceExperimentConfig.ci_scale(num_days=NUM_DAYS)
    grid = ScenarioGrid(
        config=config, protocols=standard_protocols(), loads=GRID_LOADS
    )

    # Warm the per-process input memos first so every timed run measures
    # simulation, not trace/workload generation (forked workers inherit
    # the parent's warm memo; spawn-based workers regenerate once each).
    for day_index in range(NUM_DAYS):
        for load in GRID_LOADS:
            cell_worker.trace_workload(config, day_index, load)

    serial_series, serial_s = _timed_run(ExperimentEngine(workers=1), grid, warmup=True)
    parallel_series, parallel_s = _timed_run(
        ExperimentEngine(workers=PARALLEL_WORKERS), grid, warmup=True
    )
    assert parallel_series == serial_series, "backends must agree exactly"

    cache_dir = tmp_path / "cache"
    cold_engine = ExperimentEngine(workers=1, cache_dir=cache_dir)
    cold_series, _ = _timed_run(cold_engine, grid)
    warm_engine = ExperimentEngine(workers=1, cache_dir=cache_dir)
    warm_series, warm_s = _timed_run(warm_engine, grid)
    assert warm_series == serial_series
    assert warm_engine.stats.cells_executed == 0, "warm cache must serve every cell"
    assert warm_engine.stats.cache_hits == len(grid)

    parallel_speedup = serial_s / parallel_s if parallel_s > 0 else 0.0
    cache_speedup = serial_s / warm_s if warm_s > 0 else 0.0
    emit_bench_json(
        "engine_parallel",
        {
            "cells": len(grid),
            "num_days": NUM_DAYS,
            "loads": list(GRID_LOADS),
            "workers": PARALLEL_WORKERS,
            "serial_wall_time_s": round(serial_s, 6),
            "parallel_wall_time_s": round(parallel_s, 6),
            "warm_cache_wall_time_s": round(warm_s, 6),
            "parallel_speedup": round(parallel_speedup, 3),
            "warm_cache_speedup": round(cache_speedup, 3),
            "cells_executed": {
                "serial": len(grid),
                "parallel": len(grid),
                "warm_cache": warm_engine.stats.cells_executed,
            },
            "cache_hits": warm_engine.stats.cache_hits,
        },
    )

    assert cache_speedup >= 2.0, "warm result cache should be far faster than simulating"
    if (os.cpu_count() or 1) >= PARALLEL_WORKERS:
        assert parallel_speedup >= 2.0, (
            f"expected >= 2x speedup with {PARALLEL_WORKERS} workers on "
            f"{os.cpu_count()} cores, measured {parallel_speedup:.2f}x"
        )
    else:
        pytest.skip(
            f"only {os.cpu_count()} CPU core(s): recorded "
            f"{parallel_speedup:.2f}x without asserting the multi-core target"
        )
