"""Benchmark: regenerate Figure 5 of the paper at reduced scale.

Trace-driven delivery rate vs load.
"""

from repro.experiments.trace_comparison import run_figure5

from bench_config import TRACE_LOADS, bench_trace_config, run_exhibit


def test_run_figure5(benchmark):
    result = run_exhibit(
        benchmark, run_figure5, loads=TRACE_LOADS, config=bench_trace_config()
    )
    assert set(result.labels()) == {"Rapid", "MaxProp", "Spray and Wait", "Random"}
    assert all(len(series.x) == len(TRACE_LOADS) for series in result.series)

    for series in result.series:
        assert all(0.0 <= y <= 1.0 for y in series.y)
    # Shape: delivery drops (or stays flat) as load grows for every protocol.
    for series in result.series:
        assert series.y[-1] <= series.y[0] + 0.05
