"""Benchmark: regenerate Figure 19 of the paper at reduced scale.

Power-law mobility with constrained buffers: average delay vs storage.
"""

from repro.experiments.synthetic import run_figure19

from bench_config import BUFFER_SWEEP_KB, bench_synthetic_config, run_exhibit


def test_run_figure19(benchmark):
    result = run_exhibit(
        benchmark, run_figure19, buffers_kb=BUFFER_SWEEP_KB, load=10.0,
        config=bench_synthetic_config(mobility="powerlaw"),
    )
    assert set(result.labels()) == {"Rapid", "MaxProp", "Spray and Wait", "Random"}
    assert all(len(s.x) == len(BUFFER_SWEEP_KB) for s in result.series)
    assert all(y >= 0 for s in result.series for y in s.y)
