"""Benchmark: regenerate Figure 16 of the paper at reduced scale.

Powerlaw mobility: average delay vs load.
"""

from repro.experiments.synthetic import run_figure16

from bench_config import SYNTHETIC_LOADS, bench_synthetic_config, run_exhibit


def test_run_figure16(benchmark):
    result = run_exhibit(
        benchmark, run_figure16, loads=SYNTHETIC_LOADS,
        config=bench_synthetic_config(mobility="powerlaw"),
    )
    assert set(result.labels()) == {"Rapid", "MaxProp", "Spray and Wait", "Random"}
    assert all(len(s.x) == len(SYNTHETIC_LOADS) for s in result.series)
    assert all(y >= 0 for s in result.series for y in s.y)
