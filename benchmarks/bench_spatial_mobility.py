"""Benchmark: spatial mobility contact-extraction throughput.

Position-based mobility turns node kinematics into durational contact
windows; the cost that matters is the sweep — stepping every node and
extracting radio-range contacts from each snapshot.  This bench times
one ``generate()`` per spatial model (waypoint, walk, grid, plus the
distance-rate waypoint variant) and records the throughput in
*node-steps per second* (nodes x snapshots / wall time) together with
the contact counts, then runs one end-to-end waypoint simulation cell
through the engine for scale.  Determinism is asserted along the way:
every model must produce an identical schedule on a repeat run.

Everything lands in ``benchmarks/results/BENCH_spatial_mobility.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_spatial_mobility.py [--quick]
    PYTHONPATH=src python -m pytest benchmarks/bench_spatial_mobility.py -q
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, Optional, Sequence

sys.path.insert(0, str(Path(__file__).parent))

from repro import units
from repro.engine import ExperimentEngine
from repro.engine.spec import ScenarioSpec
from repro.experiments.config import ProtocolSpec, SyntheticExperimentConfig
from repro.mobility.spatial import (
    SPATIAL_MODEL_NAMES,
    SpatialParameters,
    build_spatial_model,
)

from bench_config import emit_bench_json

#: Wall times are the best of this many runs (denoising).
REPEATS = 3


def _bench_params(distance_rate: bool = False) -> SpatialParameters:
    return SpatialParameters(
        arena_width=1500.0,
        arena_height=1500.0,
        radio_range=100.0,
        time_step=1.0,
        distance_rate=distance_rate,
    )


def _schedule_signature(schedule) -> tuple:
    return tuple(
        (c.time, c.node_a, c.node_b, c.capacity, c.duration) for c in schedule
    )


def _time_generate(
    name: str, num_nodes: int, duration: float, params: SpatialParameters
) -> Dict[str, object]:
    """Time one model's sweep; assert repeat-run determinism."""
    best = float("inf")
    signature = None
    contacts = 0
    for _ in range(REPEATS):
        model = build_spatial_model(name, num_nodes=num_nodes, params=params, seed=42)
        started = time.perf_counter()
        schedule = model.generate(duration)
        elapsed = time.perf_counter() - started
        best = min(best, elapsed)
        current = _schedule_signature(schedule)
        assert signature is None or current == signature, (
            f"{name}: repeat generate() produced a different schedule"
        )
        signature = current
        contacts = len(schedule)
    snapshots = int(duration / params.time_step) + 1
    node_steps = num_nodes * snapshots
    return {
        "contacts": contacts,
        "wall_time_s": round(best, 6),
        "node_steps": node_steps,
        "node_steps_per_s": round(node_steps / best, 1),
        "contacts_per_s": round(contacts / best, 1) if best > 0 else None,
    }


def _end_to_end_cell(quick: bool) -> Dict[str, object]:
    """One waypoint RAPID cell through the engine, for whole-stack scale."""
    config = SyntheticExperimentConfig(
        num_nodes=12 if quick else 20,
        mean_inter_meeting=70.0,
        transfer_opportunity=100 * units.KB,
        duration=(4 if quick else 10) * units.MINUTE,
        buffer_capacity=60 * units.KB,
        deadline=30.0,
        packet_interval=50.0,
        mobility="waypoint",
        spatial=SpatialParameters(
            arena_width=600.0, arena_height=600.0, radio_range=100.0
        ),
        num_runs=1,
        seed=11,
    )
    spec = ScenarioSpec.for_cell(
        config=config,
        protocol=ProtocolSpec(label="rapid", registry_name="rapid"),
        load=6.0,
        run_index=0,
    )
    started = time.perf_counter()
    with ExperimentEngine(workers=1) as engine:
        result = engine.run_cells([spec])[0]
    elapsed = time.perf_counter() - started
    return {
        "mobility": "waypoint",
        "meetings_processed": result.meetings_processed,
        "wall_time_s": round(elapsed, 6),
    }


def run_bench(quick: bool) -> Dict[str, object]:
    """Run the throughput sweep; return (and emit) the BENCH payload."""
    num_nodes = 20 if quick else 40
    duration = 600.0 if quick else 1800.0
    models: Dict[str, Dict[str, object]] = {}
    for name in SPATIAL_MODEL_NAMES:
        models[name] = _time_generate(name, num_nodes, duration, _bench_params())
    models["waypoint_distance_rate"] = _time_generate(
        "waypoint", num_nodes, duration, _bench_params(distance_rate=True)
    )
    payload = {
        "mode": "quick" if quick else "full",
        "num_nodes": num_nodes,
        "duration_s": duration,
        "time_step_s": 1.0,
        "extraction": models,
        "end_to_end_cell": _end_to_end_cell(quick),
    }
    emit_bench_json("spatial_mobility", payload)
    return payload


def test_spatial_mobility_bench():
    """Pytest entry point (quick mode keeps bench suites fast)."""
    payload = run_bench(quick=True)
    print(json.dumps(payload, indent=2, sort_keys=True))


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller fleet and shorter sweep for CI smoke runs",
    )
    args = parser.parse_args(argv)
    payload = run_bench(quick=args.quick)
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
