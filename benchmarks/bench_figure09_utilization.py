"""Benchmark: regenerate Figure 9 of the paper at reduced scale.

Channel utilization, metadata/data ratio and delivery rate vs load.
"""

from repro.experiments.control_channel import run_figure9

from bench_config import TRACE_LOADS, bench_trace_config, run_exhibit


def test_run_figure9(benchmark):
    result = run_exhibit(
        benchmark, run_figure9, loads=TRACE_LOADS, config=bench_trace_config()
    )
    utilization = result.get("Channel utilization")
    delivery = result.get("Delivery rate")
    meta = result.get("Meta information / RAPID data")
    assert all(0.0 <= y <= 1.0 for y in utilization.y + delivery.y)
    # Shape: delivery rate decreases with load even though the channel is
    # not saturated (bottleneck links), and metadata stays a small
    # fraction of the data transferred.
    assert delivery.y[-1] <= delivery.y[0] + 0.05
    assert max(meta.y) < 0.2
