"""Benchmark: regenerate Figure 14 of the paper at reduced scale.

Value of RAPID components: Random, Random+acks, RAPID-local, RAPID.
"""

from repro.experiments.components import run_figure14

from bench_config import TRACE_LOADS, bench_trace_config, run_exhibit


def test_run_figure14(benchmark):
    result = run_exhibit(
        benchmark, run_figure14, loads=TRACE_LOADS, config=bench_trace_config()
    )
    assert set(result.labels()) == {
        "Rapid", "Rapid: Local", "Random: With Acks", "Random",
    }
    rapid = sum(result.get("Rapid").y)
    random_plain = sum(result.get("Random").y)
    # Shape: the full protocol does not do worse than plain Random.
    assert rapid <= random_plain * 1.1
