"""Benchmark gate: the durational contact layer must not tax the hot path.

The contact-layer refactor threads a pluggable contact model through the
simulator.  The default ``instantaneous`` model must remain the PR-2 hot
path: this gate runs the buffer-constrained RAPID cell of
``bench_rapid_hotpath`` twice —

1. the **default** path (no options; the simulator's zero-config meeting
   loop, i.e. the PR-2 hot path as it stands), and
2. an **explicit** ``contact_model="instantaneous"`` run,

asserts the two outputs are byte-identical and the explicit spelling is
at most 10% slower (best-of-N wall time, so scheduler noise does not
flap the gate), then records the cost of the ``durational`` and
``interruptible`` models on a DieselNet-style day with real contact
windows.  Everything lands in
``benchmarks/results/BENCH_contact_model.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_contact_model.py [--quick]
    PYTHONPATH=src python -m pytest benchmarks/bench_contact_model.py -q
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple

sys.path.insert(0, str(Path(__file__).parent))

from repro import units
from repro.dtn.simulator import run_simulation
from repro.dtn.workload import PoissonWorkload
from repro.mobility.exponential import ExponentialMobility
from repro.routing.registry import create_factory
from repro.traces.dieselnet import DieselNetParameters, DieselNetTraceGenerator

from bench_config import emit_bench_json

#: Maximum overhead the explicit instantaneous mode may add over the
#: default hot path (1.10 = ten percent), plus an absolute floor so a
#: sub-100ms cell cannot flap the gate on scheduler noise.
OVERHEAD_CEILING = 1.10
ABSOLUTE_SLACK_S = 0.05
#: Wall times are the best of this many runs (denoising).
REPEATS = 3


def _hotpath_inputs(quick: bool):
    """The PR-2 buffer-constrained synthetic RAPID cell (see bench_rapid_hotpath)."""
    duration = 400.0 if quick else 1200.0
    mobility = ExponentialMobility(
        num_nodes=6,
        mean_inter_meeting=100.0,
        transfer_opportunity=60 * units.KB,
        seed=3,
    )
    schedule = mobility.generate(duration)
    workload = PoissonWorkload(packets_per_hour=700.0, seed=4)
    packets = workload.generate(list(range(6)), duration)
    return schedule, packets, 600 * units.KB


def _durational_inputs(quick: bool):
    """A DieselNet-style day with real contact windows (durational cost probe)."""
    parameters = DieselNetParameters(
        num_buses=10,
        avg_buses_per_day=8,
        day_duration=(1.0 if quick else 3.0) * units.HOUR,
        avg_meetings_per_day=60 if quick else 160,
        avg_bytes_per_day=(60 if quick else 160) * 60 * units.KB,
        num_routes=3,
    )
    day = DieselNetTraceGenerator(parameters, seed=3).generate_day(0)
    workload = PoissonWorkload(packets_per_hour=30.0, seed=4)
    packets = workload.generate(day.buses_on_road, day.schedule.duration)
    return day.schedule, packets


def _time_cell(
    schedule, packets, capacity: float, options: Optional[Dict[str, object]]
) -> Tuple[Dict[str, object], float]:
    """Run the cell REPEATS times; return (payload, best wall seconds)."""
    best = float("inf")
    payload: Dict[str, object] = {}
    for _ in range(REPEATS):
        started = time.perf_counter()
        result = run_simulation(
            schedule,
            packets,
            create_factory("rapid"),
            buffer_capacity=capacity,
            seed=5,
            options=dict(options) if options is not None else None,
        )
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best = elapsed
        payload = result.to_dict()
    return payload, best


def _canonical(payload: Dict[str, object]) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def run_gate(quick: bool) -> Dict[str, object]:
    """Run the full gate; return the BENCH payload (raises on regression)."""
    schedule, packets, capacity = _hotpath_inputs(quick)

    default_payload, default_s = _time_cell(schedule, packets, capacity, None)
    explicit_payload, explicit_s = _time_cell(
        schedule, packets, capacity, {"contact_model": "instantaneous"}
    )

    assert _canonical(default_payload) == _canonical(explicit_payload), (
        "explicit contact_model='instantaneous' output differs from the default path"
    )
    overhead = explicit_s / default_s if default_s > 0 else float("inf")

    # Cost of the durational modes on real contact windows (recorded, not
    # gated — these modes do strictly more work by design).
    day_schedule, day_packets = _durational_inputs(quick)
    _, inst_day_s = _time_cell(day_schedule, day_packets, 2 * units.MB, None)
    durational_result, durational_s = _time_cell(
        day_schedule, day_packets, 2 * units.MB, {"contact_model": "durational"}
    )
    interruptible_result, interruptible_s = _time_cell(
        day_schedule,
        day_packets,
        2 * units.MB,
        {"contact_model": "interruptible", "contact_resume": True},
    )
    contact_block = interruptible_result.get("contact", {})

    payload = {
        "mode": "quick" if quick else "full",
        "packets": len(packets),
        "overhead_ceiling": OVERHEAD_CEILING,
        "default_wall_time_s": round(default_s, 6),
        "instantaneous_wall_time_s": round(explicit_s, 6),
        "instantaneous_overhead": round(overhead, 4),
        "bit_identical_to_default": True,
        "durational_probe": {
            "meetings": int(durational_result["meetings_processed"]),
            "packets": len(day_packets),
            "instantaneous_wall_time_s": round(inst_day_s, 6),
            "durational_wall_time_s": round(durational_s, 6),
            "interruptible_wall_time_s": round(interruptible_s, 6),
            "contacts_interrupted": int(contact_block.get("contacts_interrupted", 0)),
            "transfers_interrupted": int(contact_block.get("transfers_interrupted", 0)),
            "transfers_resumed": int(contact_block.get("transfers_resumed", 0)),
        },
    }
    emit_bench_json("contact_model", payload)
    assert explicit_s <= default_s * OVERHEAD_CEILING + ABSOLUTE_SLACK_S, (
        f"contact-layer regression: explicit instantaneous mode is "
        f"{overhead:.2f}x the default hot path (ceiling {OVERHEAD_CEILING}x); "
        f"default={default_s:.3f}s explicit={explicit_s:.3f}s"
    )
    return payload


def test_contact_model_gate():
    """Pytest entry point (quick mode keeps bench suites fast)."""
    payload = run_gate(quick=True)
    print(json.dumps(payload, indent=2, sort_keys=True))


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller cells for CI smoke runs; default is the full "
        "bench_rapid_hotpath-sized cell",
    )
    args = parser.parse_args(argv)
    payload = run_gate(quick=args.quick)
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
