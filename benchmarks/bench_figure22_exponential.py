"""Benchmark: regenerate Figure 22 of the paper at reduced scale.

Exponential mobility: average delay vs load.
"""

from repro.experiments.synthetic import run_figure22

from bench_config import SYNTHETIC_LOADS, bench_synthetic_config, run_exhibit


def test_run_figure22(benchmark):
    result = run_exhibit(
        benchmark, run_figure22, loads=SYNTHETIC_LOADS,
        config=bench_synthetic_config(mobility="exponential"),
    )
    assert set(result.labels()) == {"Rapid", "MaxProp", "Spray and Wait", "Random"}
    assert all(len(s.x) == len(SYNTHETIC_LOADS) for s in result.series)
    assert all(y >= 0 for s in result.series for y in s.y)
