"""Benchmark: regenerate Figure 23 of the paper at reduced scale.

Exponential mobility: max delay vs load.
"""

from repro.experiments.synthetic import run_figure23

from bench_config import SYNTHETIC_LOADS, bench_synthetic_config, run_exhibit


def test_run_figure23(benchmark):
    result = run_exhibit(
        benchmark, run_figure23, loads=SYNTHETIC_LOADS,
        config=bench_synthetic_config(mobility="exponential"),
    )
    assert set(result.labels()) == {"Rapid", "MaxProp", "Spray and Wait", "Random"}
    assert all(len(s.x) == len(SYNTHETIC_LOADS) for s in result.series)
    assert all(y >= 0 for s in result.series for y in s.y)
