"""Benchmark: regenerate Figure 10 of the paper at reduced scale.

In-band vs instant-global control channel: average delay.
"""

from repro.experiments.global_channel import run_figure10

from bench_config import TRACE_LOADS, bench_trace_config, run_exhibit


def test_run_figure10(benchmark):
    result = run_exhibit(
        benchmark, run_figure10, loads=TRACE_LOADS, config=bench_trace_config()
    )
    assert set(result.labels()) == {
        "In-band control channel", "Instant global control channel",
    }
    assert all(y >= 0 for s in result.series for y in s.y)
