"""Benchmark: regenerate Figure 13 of the paper at reduced scale.

Comparison with offline Optimal at small loads (delay includes undelivered packets).
"""

from repro.experiments.optimal_comparison import run_figure13

from bench_config import OPTIMAL_LOADS, bench_optimal_trace_config, run_exhibit


def test_run_figure13(benchmark):
    result = run_exhibit(
        benchmark, run_figure13, loads=OPTIMAL_LOADS, config=bench_optimal_trace_config()
    )
    optimal = result.get("Optimal")
    rapid = result.get("Rapid: In-band control channel")
    maxprop = result.get("Maxprop")
    # Optimal lower-bounds every protocol at every load.
    for x in optimal.x:
        assert optimal.y_at(x) <= rapid.y_at(x) + 1e-6
        assert optimal.y_at(x) <= maxprop.y_at(x) + 1e-6
