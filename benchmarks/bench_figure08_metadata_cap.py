"""Benchmark: regenerate Figure 8 of the paper at reduced scale.

Average delay as the in-band metadata allowance grows.
"""

from repro.experiments.control_channel import run_figure8

from bench_config import bench_trace_config, run_exhibit


def test_run_figure8(benchmark):
    result = run_exhibit(
        benchmark,
        run_figure8,
        caps=(0.0, 0.05, 0.35),
        loads=(3.0, 8.0),
        config=bench_trace_config(),
    )
    assert len(result.series) == 2
    assert all(len(series.x) == 3 for series in result.series)
    assert all(y >= 0 for series in result.series for y in series.y)
