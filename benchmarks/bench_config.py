"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at a reduced
scale (see DESIGN.md, "Scale-down for tests and benches") and prints the
resulting rows/series so the output can be compared against the paper's
exhibits.  `pytest-benchmark` records the wall-clock cost of regenerating
each exhibit; each exhibit is run once (``rounds=1``) because a single run
already averages over days/seeds internally.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro import units
from repro.experiments.config import SyntheticExperimentConfig, TraceExperimentConfig
from repro.traces.dieselnet import DieselNetParameters

#: Load sweep (packets per hour per destination) for trace-driven figures.
TRACE_LOADS: Sequence[float] = (2.0, 6.0, 12.0)
#: Load sweep for the Optimal comparison (kept small as in the paper).
OPTIMAL_LOADS: Sequence[float] = (1.0, 2.0)
#: Load sweep (packets per 50 s per destination) for synthetic figures.
SYNTHETIC_LOADS: Sequence[float] = (4.0, 10.0)
#: Buffer sweep (KB) for the constrained-storage figures.
BUFFER_SWEEP_KB: Sequence[float] = (10.0, 40.0, 120.0)


def bench_trace_config(seed: int = 7, num_days: int = 1) -> TraceExperimentConfig:
    """Reduced DieselNet configuration used by the trace-driven benches."""
    config = TraceExperimentConfig.ci_scale(seed=seed, num_days=num_days)
    return config


def bench_optimal_trace_config(seed: int = 7) -> TraceExperimentConfig:
    """Extra-small trace configuration so the ILP stays tractable."""
    parameters = DieselNetParameters(
        num_buses=8,
        avg_buses_per_day=5,
        day_duration=1.0 * units.HOUR,
        avg_meetings_per_day=30,
        avg_bytes_per_day=30 * 60 * units.KB,
        num_routes=2,
    )
    return TraceExperimentConfig(
        trace_parameters=parameters,
        num_days=1,
        deadline=0.15 * units.HOUR,
        seed=seed,
        metadata_byte_scale=0.05,
    )


def bench_synthetic_config(mobility: str = "powerlaw", seed: int = 11) -> SyntheticExperimentConfig:
    """Reduced synthetic configuration used by the synthetic-mobility benches."""
    return SyntheticExperimentConfig(
        num_nodes=8,
        mean_inter_meeting=70.0,
        transfer_opportunity=100 * units.KB,
        duration=4 * units.MINUTE,
        buffer_capacity=40 * units.KB,
        deadline=25.0,
        packet_interval=50.0,
        mobility=mobility,
        num_runs=1,
        seed=seed,
    )


def run_exhibit(benchmark, runner: Callable, **kwargs):
    """Run one exhibit exactly once under pytest-benchmark and print it."""
    result = benchmark.pedantic(lambda: runner(**kwargs), rounds=1, iterations=1)
    print()
    print(result.to_text())
    return result
