"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at a reduced
scale (see DESIGN.md, "Scale-down for tests and benches") and prints the
resulting rows/series so the output can be compared against the paper's
exhibits.  `pytest-benchmark` records the wall-clock cost of regenerating
each exhibit; each exhibit is run once (``rounds=1``) because a single run
already averages over days/seeds internally.

Exhibits are executed through a fresh
:class:`~repro.engine.ExperimentEngine` per benchmark, and every run also
emits a machine-readable ``BENCH_<name>.json`` (wall time, cells
executed, cache hits, worker count) into ``benchmarks/results/`` — or
``$BENCH_RESULTS_DIR`` — so the performance trajectory of the repo can be
tracked across commits.
"""

from __future__ import annotations

import json
import os
import platform
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import Callable, Optional, Sequence

from repro import units
from repro.engine import ExperimentEngine, use_engine
from repro.experiments.config import SyntheticExperimentConfig, TraceExperimentConfig
from repro.traces.dieselnet import DieselNetParameters

#: Where the machine-readable benchmark records land.
RESULTS_DIR = Path(os.environ.get("BENCH_RESULTS_DIR", Path(__file__).parent / "results"))

#: Load sweep (packets per hour per destination) for trace-driven figures.
TRACE_LOADS: Sequence[float] = (2.0, 6.0, 12.0)
#: Load sweep for the Optimal comparison (kept small as in the paper).
OPTIMAL_LOADS: Sequence[float] = (1.0, 2.0)
#: Load sweep (packets per 50 s per destination) for synthetic figures.
SYNTHETIC_LOADS: Sequence[float] = (4.0, 10.0)
#: Buffer sweep (KB) for the constrained-storage figures.
BUFFER_SWEEP_KB: Sequence[float] = (10.0, 40.0, 120.0)


def bench_trace_config(seed: int = 7, num_days: int = 1) -> TraceExperimentConfig:
    """Reduced DieselNet configuration used by the trace-driven benches."""
    config = TraceExperimentConfig.ci_scale(seed=seed, num_days=num_days)
    return config


def bench_optimal_trace_config(seed: int = 7) -> TraceExperimentConfig:
    """Extra-small trace configuration so the ILP stays tractable."""
    parameters = DieselNetParameters(
        num_buses=8,
        avg_buses_per_day=5,
        day_duration=1.0 * units.HOUR,
        avg_meetings_per_day=30,
        avg_bytes_per_day=30 * 60 * units.KB,
        num_routes=2,
    )
    return TraceExperimentConfig(
        trace_parameters=parameters,
        num_days=1,
        deadline=0.15 * units.HOUR,
        seed=seed,
        metadata_byte_scale=0.05,
    )


def bench_synthetic_config(mobility: str = "powerlaw", seed: int = 11) -> SyntheticExperimentConfig:
    """Reduced synthetic configuration used by the synthetic-mobility benches."""
    return SyntheticExperimentConfig(
        num_nodes=8,
        mean_inter_meeting=70.0,
        transfer_opportunity=100 * units.KB,
        duration=4 * units.MINUTE,
        buffer_capacity=40 * units.KB,
        deadline=25.0,
        packet_interval=50.0,
        mobility=mobility,
        num_runs=1,
        seed=seed,
    )


def emit_bench_json(name: str, payload: dict) -> Path:
    """Write one ``BENCH_<name>.json`` performance record and return its path."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    record = {
        "bench": name,
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        **payload,
    }
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path


def _timed_bench(benchmark, fn: Callable, engine: ExperimentEngine, kwargs: dict):
    """Run *fn* once under pytest-benchmark through *engine*.

    Returns ``(value, payload)`` where *payload* holds the wall time and
    engine counters every ``BENCH_*.json`` record shares.
    """
    timing = {}

    def call():
        started = time.perf_counter()
        with engine, use_engine(engine):
            outcome = fn(**kwargs)
        timing["wall_time_s"] = time.perf_counter() - started
        return outcome

    value = benchmark.pedantic(call, rounds=1, iterations=1)
    payload = {
        "wall_time_s": round(timing["wall_time_s"], 6),
        "workers": engine.workers,
        "cells_total": engine.stats.cells_total,
        "cells_executed": engine.stats.cells_executed,
        "cache_hits": engine.stats.cache_hits,
    }
    return value, payload


def run_bench_callable(benchmark, fn: Callable, bench_name: str, **kwargs):
    """Time *fn* under pytest-benchmark and emit its ``BENCH_*.json`` record.

    The generic variant of :func:`run_exhibit` for benches whose callable
    does not return a printable exhibit (e.g. the ablation sweeps).
    """
    value, payload = _timed_bench(benchmark, fn, ExperimentEngine(), kwargs)
    emit_bench_json(bench_name, payload)
    return value


def run_exhibit(
    benchmark,
    runner: Callable,
    bench_name: Optional[str] = None,
    workers: int = 1,
    cache_dir: Optional[str] = None,
    **kwargs,
):
    """Run one exhibit exactly once under pytest-benchmark and print it.

    The exhibit executes through a fresh engine (``workers``/``cache_dir``
    configurable per bench) and a ``BENCH_<name>.json`` record with the
    wall time and engine counters is emitted alongside the printed series.
    """
    engine = ExperimentEngine(workers=workers, cache_dir=cache_dir)
    result, payload = _timed_bench(benchmark, runner, engine, kwargs)
    print()
    print(result.to_text())
    name = bench_name or runner.__name__
    if name.startswith("run_"):
        name = name[len("run_"):]
    payload["exhibit"] = getattr(result, "figure_id", None) or getattr(result, "table_id", name)
    emit_bench_json(name, payload)
    return result
