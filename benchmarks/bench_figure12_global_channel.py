"""Benchmark: regenerate Figure 12 of the paper at reduced scale.

In-band vs instant-global control channel: delivery within deadline.
"""

from repro.experiments.global_channel import run_figure12

from bench_config import TRACE_LOADS, bench_trace_config, run_exhibit


def test_run_figure12(benchmark):
    result = run_exhibit(
        benchmark, run_figure12, loads=TRACE_LOADS, config=bench_trace_config()
    )
    assert set(result.labels()) == {
        "In-band control channel", "Instant global control channel",
    }
    assert all(0 <= y <= 1 for s in result.series for y in s.y)
