"""Benchmark: regenerate Figure 24 of the paper at reduced scale.

Exponential mobility: delivery within deadline vs load.
"""

from repro.experiments.synthetic import run_figure24

from bench_config import SYNTHETIC_LOADS, bench_synthetic_config, run_exhibit


def test_run_figure24(benchmark):
    result = run_exhibit(
        benchmark, run_figure24, loads=SYNTHETIC_LOADS,
        config=bench_synthetic_config(mobility="exponential"),
    )
    assert set(result.labels()) == {"Rapid", "MaxProp", "Spray and Wait", "Random"}
    assert all(len(s.x) == len(SYNTHETIC_LOADS) for s in result.series)
    assert all(0 <= y <= 1 for s in result.series for y in s.y)
