"""Ablation: the h-hop horizon of RAPID's meeting-time estimation.

Section 4.1.2 limits the expected-meeting-time computation to h = 3 hops.
This ablation sweeps h in {1, 2, 3} on the trace scenario and reports the
effect on delivery rate and average delay — the design-choice ablation
called out in DESIGN.md.
"""

from __future__ import annotations

from repro.analysis.metrics import mean_metric
from repro.experiments.config import ProtocolSpec
from repro.experiments.runner import TraceRunner

from bench_config import bench_trace_config, run_bench_callable


def _hop_sweep(hops_values=(1, 2, 3), load=6.0):
    runner = TraceRunner(bench_trace_config())
    rows = {}
    for hops in hops_values:
        spec = ProtocolSpec("Rapid", "rapid", {"metric": "average_delay", "max_hops": hops, "label": f"rapid-h{hops}"})
        results = runner.run_protocol(spec, load_packets_per_hour=load)
        rows[hops] = {
            "delivery_rate": mean_metric(results, "delivery_rate"),
            "average_delay": mean_metric(results, "average_delay"),
        }
    return rows


def test_meeting_horizon_ablation(benchmark):
    rows = run_bench_callable(benchmark, _hop_sweep, "ablation_hops")
    print()
    print("Ablation: meeting-time estimation horizon h")
    for hops, metrics in rows.items():
        print(
            f"  h={hops}: delivery_rate={metrics['delivery_rate']:.3f} "
            f"average_delay={metrics['average_delay'] / 60:.1f} min"
        )
    for metrics in rows.values():
        assert 0.0 <= metrics["delivery_rate"] <= 1.0
        assert metrics["average_delay"] >= 0.0
