"""Benchmark: regenerate Figure 21 of the paper at reduced scale.

Power-law mobility with constrained buffers: delivery within deadline vs storage.
"""

from repro.experiments.synthetic import run_figure21

from bench_config import BUFFER_SWEEP_KB, bench_synthetic_config, run_exhibit


def test_run_figure21(benchmark):
    result = run_exhibit(
        benchmark, run_figure21, buffers_kb=BUFFER_SWEEP_KB, load=10.0,
        config=bench_synthetic_config(mobility="powerlaw"),
    )
    assert set(result.labels()) == {"Rapid", "MaxProp", "Spray and Wait", "Random"}
    assert all(len(s.x) == len(BUFFER_SWEEP_KB) for s in result.series)
    assert all(0 <= y <= 1 for s in result.series for y in s.y)
