"""Benchmark: regenerate Figure 4 of the paper at reduced scale.

Trace-driven average delay vs load: RAPID vs MaxProp, Spray and Wait, Random.
"""

from repro.experiments.trace_comparison import run_figure4

from bench_config import TRACE_LOADS, bench_trace_config, run_exhibit


def test_run_figure4(benchmark):
    result = run_exhibit(
        benchmark, run_figure4, loads=TRACE_LOADS, config=bench_trace_config()
    )
    assert set(result.labels()) == {"Rapid", "MaxProp", "Spray and Wait", "Random"}
    assert all(len(series.x) == len(TRACE_LOADS) for series in result.series)

    rapid = result.get("Rapid")
    random_series = result.get("Random")
    # Shape: RAPID's delivered-packet delay should not exceed Random's by much.
    assert sum(rapid.y) <= sum(random_series.y) * 1.15
