"""Benchmark: regenerate Figure 15 of the paper at reduced scale.

CDF of Jain's fairness index over parallel packet batches.
"""

from repro.experiments.fairness import run_figure15

from bench_config import bench_trace_config, run_exhibit


def test_run_figure15(benchmark):
    result = run_exhibit(
        benchmark,
        run_figure15,
        batch_sizes=(10, 20),
        config=bench_trace_config(num_days=2),
        background_load=4.0,
    )
    assert len(result.series) == 2
    for series in result.series:
        assert all(0.0 <= x <= 1.0 + 1e-9 for x in series.x)
        assert all(0.0 <= y <= 1.0 for y in series.y)
