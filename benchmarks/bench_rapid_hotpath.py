"""Benchmark gate: the incremental RAPID delay-estimation fast path.

Runs one buffer-constrained synthetic RAPID cell (several thousand 1 KB
packets against small node buffers, so eviction cascades and per-meeting
candidate ranking dominate) twice:

1. the incremental fast path — per-destination serve-order index,
   per-meeting :class:`~repro.core.meeting_estimator.EstimateScratch`,
   vectorised delay math, lazy-heap candidate ranking and cascade-scoped
   eviction-score caching;
2. the reference path (``REPRO_SLOW_ESTIMATES=1``) — the original
   O(buffer) scans, eager full sort and per-step eviction rescoring.

Both must produce **byte-identical** ``SimulationResult.to_dict()``
output, and the fast path must be at least ``3x`` faster (``1.5x`` in
``--quick`` mode, whose cell is small enough for CI smoke runs).  A
second stage re-runs a small rapid/maxprop/prophet grid through the
experiment engine serially, fanned out over worker processes and against
a cold-then-warm result cache, asserting all three backends emit
byte-identical results.  Everything lands in
``benchmarks/results/BENCH_rapid_hotpath.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_rapid_hotpath.py [--quick]
    PYTHONPATH=src python -m pytest benchmarks/bench_rapid_hotpath.py -q
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

sys.path.insert(0, str(Path(__file__).parent))

from repro import units
from repro.dtn.simulator import run_simulation
from repro.dtn.workload import PoissonWorkload
from repro.engine import ExperimentEngine, ScenarioGrid
from repro.experiments.config import ProtocolSpec, SyntheticExperimentConfig
from repro.mobility.exponential import ExponentialMobility
from repro.profiling import ENV_SLOW_ESTIMATES
from repro.routing.registry import create_factory

from bench_config import emit_bench_json

#: Minimum fast-vs-reference wall-time speedup the gate enforces.
FULL_SPEEDUP_FLOOR = 3.0
QUICK_SPEEDUP_FLOOR = 1.5
#: The hot-path cell must be a real load: at least this many packets.
MIN_PACKETS = 2000

#: Protocols whose serial / parallel / cached outputs must agree.
IDENTITY_PROTOCOLS = ("rapid", "maxprop", "prophet")


def _hotpath_inputs(quick: bool):
    """The buffer-constrained synthetic RAPID cell the gate times.

    600 KB buffers (~600 packets deep) against a multi-megabyte offered
    load keep every node under storage pressure, which is where the
    reference path's O(buffer) scans and per-step eviction rescoring
    hurt the most.
    """
    duration = 600.0 if quick else 1200.0
    mobility = ExponentialMobility(
        num_nodes=6,
        mean_inter_meeting=100.0,
        transfer_opportunity=60 * units.KB,
        seed=3,
    )
    schedule = mobility.generate(duration)
    workload = PoissonWorkload(packets_per_hour=700.0, seed=4)
    packets = workload.generate(list(range(6)), duration)
    return schedule, packets, 600 * units.KB


def _run_hotpath_cell(quick: bool, slow: bool) -> Tuple[Dict[str, object], float, int]:
    """Run the cell on one path; return (to_dict payload, wall seconds, #packets)."""
    previous = os.environ.pop(ENV_SLOW_ESTIMATES, None)
    if slow:
        os.environ[ENV_SLOW_ESTIMATES] = "1"
    try:
        schedule, packets, capacity = _hotpath_inputs(quick)
        started = time.perf_counter()
        result = run_simulation(
            schedule,
            packets,
            create_factory("rapid"),
            buffer_capacity=capacity,
            seed=5,
        )
        elapsed = time.perf_counter() - started
        return result.to_dict(), elapsed, len(packets)
    finally:
        os.environ.pop(ENV_SLOW_ESTIMATES, None)
        if previous is not None:
            os.environ[ENV_SLOW_ESTIMATES] = previous


def _canonical(payloads: List[Dict[str, object]]) -> str:
    return json.dumps(payloads, sort_keys=True, separators=(",", ":"))


def _identity_grid() -> ScenarioGrid:
    config = SyntheticExperimentConfig(
        num_nodes=8,
        mean_inter_meeting=70.0,
        transfer_opportunity=100 * units.KB,
        duration=4 * units.MINUTE,
        buffer_capacity=40 * units.KB,
        deadline=25.0,
        packet_interval=50.0,
        mobility="exponential",
        num_runs=1,
        seed=11,
    )
    protocols = [ProtocolSpec(label=name, registry_name=name) for name in IDENTITY_PROTOCOLS]
    return ScenarioGrid(config=config, protocols=protocols, loads=(6.0,))


def _backend_identity_check(tmp_cache_dir: Path) -> Dict[str, object]:
    """Run the identity grid serial / parallel / cached; assert equal output."""
    grid = _identity_grid()

    with ExperimentEngine(workers=1) as engine:
        serial = _canonical([r.to_dict() for r in engine.run_grid(grid)])
    with ExperimentEngine(workers=2) as engine:
        parallel = _canonical([r.to_dict() for r in engine.run_grid(grid)])
    with ExperimentEngine(workers=1, cache_dir=tmp_cache_dir) as engine:
        cold = _canonical([r.to_dict() for r in engine.run_grid(grid)])
    with ExperimentEngine(workers=1, cache_dir=tmp_cache_dir) as engine:
        warm = _canonical([r.to_dict() for r in engine.run_grid(grid)])
        warm_hits = engine.stats.cache_hits

    assert parallel == serial, "parallel backend output differs from serial"
    assert cold == serial, "cache-filling run output differs from serial"
    assert warm == serial, "warm-cache output differs from serial"
    assert warm_hits == len(grid), "warm cache did not serve every cell"
    return {
        "protocols": list(IDENTITY_PROTOCOLS),
        "cells": len(grid),
        "backends_identical": True,
    }


def run_gate(quick: bool, cache_dir: Optional[Path] = None) -> Dict[str, object]:
    """Run the full gate; return the BENCH payload (raises on regression)."""
    fast_payload, fast_s, num_packets = _run_hotpath_cell(quick, slow=False)
    slow_payload, slow_s, _ = _run_hotpath_cell(quick, slow=True)

    assert num_packets >= MIN_PACKETS, (
        f"hot-path cell too small: {num_packets} packets < {MIN_PACKETS}"
    )
    assert _canonical([fast_payload]) == _canonical([slow_payload]), (
        "fast path output differs from the REPRO_SLOW_ESTIMATES reference"
    )
    speedup = slow_s / fast_s if fast_s > 0 else float("inf")

    if cache_dir is None:
        import tempfile

        with tempfile.TemporaryDirectory(prefix="repro-hotpath-") as tmp:
            identity = _backend_identity_check(Path(tmp) / "cache")
    else:
        identity = _backend_identity_check(cache_dir)

    floor = QUICK_SPEEDUP_FLOOR if quick else FULL_SPEEDUP_FLOOR
    payload = {
        "mode": "quick" if quick else "full",
        "packets": num_packets,
        "buffer_kb": 600,
        "fast_wall_time_s": round(fast_s, 6),
        "reference_wall_time_s": round(slow_s, 6),
        "speedup": round(speedup, 3),
        "speedup_floor": floor,
        "bit_identical_to_reference": True,
        "identity_check": identity,
    }
    emit_bench_json("rapid_hotpath", payload)
    assert speedup >= floor, (
        f"hot-path regression: fast path only {speedup:.2f}x faster than the "
        f"reference (floor {floor}x); fast={fast_s:.2f}s reference={slow_s:.2f}s"
    )
    return payload


def test_rapid_hotpath_gate(tmp_path):
    """Pytest entry point (quick mode keeps bench suites fast)."""
    payload = run_gate(quick=True, cache_dir=tmp_path / "cache")
    print(json.dumps(payload, indent=2, sort_keys=True))


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller cell and a 1.5x floor (CI smoke); default is the "
        "full >= 2k-packet cell with the 3x floor",
    )
    args = parser.parse_args(argv)
    payload = run_gate(quick=args.quick)
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
