"""Benchmark gate: the vectorised RAPID structure-of-arrays hot path.

Runs one buffer-constrained synthetic RAPID cell twice:

1. the fast path — the structure-of-arrays
   :class:`~repro.dtn.packet_store.PacketStore` columns, batched
   ``bytes_ahead`` / candidate-utility / eviction array kernels, cached
   buffer snapshots, the per-destination serve-order index and the
   metadata change journal;
2. the reference path (``REPRO_SLOW_ESTIMATES=1``) — the original
   O(buffer) scans, scalar per-packet estimates, eager full sort and
   per-step eviction rescoring.

Both must produce **byte-identical** ``SimulationResult.to_dict()``
output, and the fast path must be at least ``8x`` faster on the full
cell (~28k packets against 1.5 MB buffers; ``1.5x`` in ``--quick`` mode,
whose cell is small enough for CI smoke runs).  A second stage re-runs a
small rapid/maxprop/prophet grid through the experiment engine serially,
fanned out over worker processes and against a cold-then-warm result
cache, asserting all three backends emit byte-identical results.
``--scale`` additionally runs a 5 000-node / 500 000-packet synthetic
cell on the fast path only, recording wall time and peak RSS — the
bounded-memory scale probe.  Everything lands in
``benchmarks/results/BENCH_rapid_hotpath.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_rapid_hotpath.py [--quick] [--scale]
    PYTHONPATH=src python -m pytest benchmarks/bench_rapid_hotpath.py -q
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

sys.path.insert(0, str(Path(__file__).parent))

import numpy as np

from repro import units
from repro.dtn.packet import Packet
from repro.dtn.simulator import run_simulation
from repro.dtn.workload import PoissonWorkload
from repro.engine import ExperimentEngine, ScenarioGrid
from repro.experiments.config import ProtocolSpec, SyntheticExperimentConfig
from repro.mobility.exponential import ExponentialMobility
from repro.mobility.schedule import Meeting, MeetingSchedule
from repro.profiling import ENV_SLOW_ESTIMATES
from repro.routing.registry import create_factory

from bench_config import emit_bench_json

#: Minimum fast-vs-reference wall-time speedup the gate enforces.  The
#: full cell is deep enough (1.5 MB buffers, ~28k packets) that the
#: reference path's O(buffer) scalar scans dominate; the SoA kernels
#: clear the floor with >2x headroom.
FULL_SPEEDUP_FLOOR = 8.0
QUICK_SPEEDUP_FLOOR = 1.5
#: The hot-path cell must be a real load: at least this many packets.
QUICK_MIN_PACKETS = 2000
FULL_MIN_PACKETS = 20000

#: Protocols whose serial / parallel / cached outputs must agree.
IDENTITY_PROTOCOLS = ("rapid", "maxprop", "prophet")

#: Scale probe dimensions (``--scale``): a sparse 5k-node cell carrying
#: half a million packets, sized to finish in minutes on one core.
SCALE_NODES = 5000
SCALE_PACKETS = 500_000
SCALE_MEETINGS = 60_000
SCALE_DURATION = 3600.0


def _hotpath_inputs(quick: bool):
    """The buffer-constrained synthetic RAPID cell the gate times.

    The quick cell keeps 600 KB buffers (~600 packets deep) against a
    multi-megabyte offered load; the full cell raises the pressure to
    1.5 MB buffers and ~28k packets across 8 nodes, which is where the
    reference path's O(buffer) scans and per-step eviction rescoring
    hurt the most.
    """
    if quick:
        duration = 600.0
        mobility = ExponentialMobility(
            num_nodes=6,
            mean_inter_meeting=100.0,
            transfer_opportunity=60 * units.KB,
            seed=3,
        )
        schedule = mobility.generate(duration)
        workload = PoissonWorkload(packets_per_hour=700.0, seed=4)
        packets = workload.generate(list(range(6)), duration)
        return schedule, packets, 600 * units.KB
    duration = 1200.0
    mobility = ExponentialMobility(
        num_nodes=8,
        mean_inter_meeting=90.0,
        transfer_opportunity=100 * units.KB,
        seed=3,
    )
    schedule = mobility.generate(duration)
    workload = PoissonWorkload(packets_per_hour=1500.0, seed=4)
    packets = workload.generate(list(range(8)), duration)
    return schedule, packets, 1500 * units.KB


def _run_hotpath_cell(quick: bool, slow: bool) -> Tuple[Dict[str, object], float, int]:
    """Run the cell on one path; return (to_dict payload, wall seconds, #packets)."""
    previous = os.environ.pop(ENV_SLOW_ESTIMATES, None)
    if slow:
        os.environ[ENV_SLOW_ESTIMATES] = "1"
    try:
        schedule, packets, capacity = _hotpath_inputs(quick)
        started = time.perf_counter()
        result = run_simulation(
            schedule,
            packets,
            create_factory("rapid"),
            buffer_capacity=capacity,
            seed=5,
        )
        elapsed = time.perf_counter() - started
        return result.to_dict(), elapsed, len(packets)
    finally:
        os.environ.pop(ENV_SLOW_ESTIMATES, None)
        if previous is not None:
            os.environ[ENV_SLOW_ESTIMATES] = previous


def _canonical(payloads: List[Dict[str, object]]) -> str:
    return json.dumps(payloads, sort_keys=True, separators=(",", ":"))


def _identity_grid() -> ScenarioGrid:
    config = SyntheticExperimentConfig(
        num_nodes=8,
        mean_inter_meeting=70.0,
        transfer_opportunity=100 * units.KB,
        duration=4 * units.MINUTE,
        buffer_capacity=40 * units.KB,
        deadline=25.0,
        packet_interval=50.0,
        mobility="exponential",
        num_runs=1,
        seed=11,
    )
    protocols = [ProtocolSpec(label=name, registry_name=name) for name in IDENTITY_PROTOCOLS]
    return ScenarioGrid(config=config, protocols=protocols, loads=(6.0,))


def _backend_identity_check(tmp_cache_dir: Path) -> Dict[str, object]:
    """Run the identity grid serial / parallel / cached; assert equal output."""
    grid = _identity_grid()

    with ExperimentEngine(workers=1) as engine:
        serial = _canonical([r.to_dict() for r in engine.run_grid(grid)])
    with ExperimentEngine(workers=2) as engine:
        parallel = _canonical([r.to_dict() for r in engine.run_grid(grid)])
    with ExperimentEngine(workers=1, cache_dir=tmp_cache_dir) as engine:
        cold = _canonical([r.to_dict() for r in engine.run_grid(grid)])
    with ExperimentEngine(workers=1, cache_dir=tmp_cache_dir) as engine:
        warm = _canonical([r.to_dict() for r in engine.run_grid(grid)])
        warm_hits = engine.stats.cache_hits

    assert parallel == serial, "parallel backend output differs from serial"
    assert cold == serial, "cache-filling run output differs from serial"
    assert warm == serial, "warm-cache output differs from serial"
    assert warm_hits == len(grid), "warm cache did not serve every cell"
    return {
        "protocols": list(IDENTITY_PROTOCOLS),
        "cells": len(grid),
        "backends_identical": True,
    }


# ----------------------------------------------------------------------
# Scale probe (--scale): 5k nodes x 500k packets, fast path only
# ----------------------------------------------------------------------
def _scale_inputs() -> Tuple[MeetingSchedule, List[Packet], float]:
    """Build the sparse 5k-node synthetic cell directly.

    The pairwise mobility samplers are O(nodes^2) and unusable at this
    scale, so the schedule is drawn directly: ``SCALE_MEETINGS`` random
    node pairs at uniform times.  Packets are drawn the same way (random
    sources and destinations).  Shallow 30 KB buffers keep every node
    under storage pressure so the probe exercises the eviction kernels,
    not just insertion.
    """
    rng = np.random.default_rng(42)
    times = np.sort(rng.uniform(0.0, SCALE_DURATION, size=SCALE_MEETINGS))
    pairs = rng.integers(0, SCALE_NODES, size=(SCALE_MEETINGS, 2))
    same = pairs[:, 0] == pairs[:, 1]
    pairs[same, 1] = (pairs[same, 0] + 1) % SCALE_NODES
    meetings = [
        Meeting(
            time=float(times[i]),
            node_a=int(pairs[i, 0]),
            node_b=int(pairs[i, 1]),
            capacity=40 * units.KB,
        )
        for i in range(SCALE_MEETINGS)
    ]
    schedule = MeetingSchedule(
        meetings, nodes=range(SCALE_NODES), duration=SCALE_DURATION
    )

    creation = np.sort(rng.uniform(0.0, SCALE_DURATION * 0.8, size=SCALE_PACKETS))
    endpoints = rng.integers(0, SCALE_NODES, size=(SCALE_PACKETS, 2))
    same = endpoints[:, 0] == endpoints[:, 1]
    endpoints[same, 1] = (endpoints[same, 0] + 1) % SCALE_NODES
    packets = [
        Packet(
            packet_id=i,
            source=int(endpoints[i, 0]),
            destination=int(endpoints[i, 1]),
            size=units.KB,
            creation_time=float(creation[i]),
        )
        for i in range(SCALE_PACKETS)
    ]
    return schedule, packets, 30 * units.KB


def run_scale_probe() -> Dict[str, object]:
    """Run the 5k-node / 500k-packet cell once on the fast path.

    The probe asserts completion (bounded memory, minutes of wall time)
    rather than a speedup: the reference path would take hours here.
    The in-band control channel is disabled — at 5 000 nodes the
    metadata flood is the workload, and the probe targets the packet
    kernels.
    """
    schedule, packets, capacity = _scale_inputs()
    rss_before_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    started = time.perf_counter()
    result = run_simulation(
        schedule,
        packets,
        create_factory("rapid", control_channel="none"),
        buffer_capacity=capacity,
        seed=7,
    )
    elapsed = time.perf_counter() - started
    peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return {
        "nodes": SCALE_NODES,
        "packets": SCALE_PACKETS,
        "meetings": SCALE_MEETINGS,
        "wall_time_s": round(elapsed, 3),
        "peak_rss_mb": round(peak_kb / 1024.0, 1),
        "rss_before_mb": round(rss_before_kb / 1024.0, 1),
        "delivered": result.deliveries,
        "delivery_rate": round(result.delivery_rate(), 6),
    }


def run_gate(
    quick: bool, cache_dir: Optional[Path] = None, scale: bool = False
) -> Dict[str, object]:
    """Run the full gate; return the BENCH payload (raises on regression)."""
    fast_payload, fast_s, num_packets = _run_hotpath_cell(quick, slow=False)
    slow_payload, slow_s, _ = _run_hotpath_cell(quick, slow=True)

    min_packets = QUICK_MIN_PACKETS if quick else FULL_MIN_PACKETS
    assert num_packets >= min_packets, (
        f"hot-path cell too small: {num_packets} packets < {min_packets}"
    )
    assert _canonical([fast_payload]) == _canonical([slow_payload]), (
        "fast path output differs from the REPRO_SLOW_ESTIMATES reference"
    )
    speedup = slow_s / fast_s if fast_s > 0 else float("inf")

    if cache_dir is None:
        import tempfile

        with tempfile.TemporaryDirectory(prefix="repro-hotpath-") as tmp:
            identity = _backend_identity_check(Path(tmp) / "cache")
    else:
        identity = _backend_identity_check(cache_dir)

    floor = QUICK_SPEEDUP_FLOOR if quick else FULL_SPEEDUP_FLOOR
    payload = {
        "mode": "quick" if quick else "full",
        "packets": num_packets,
        "buffer_kb": 600 if quick else 1500,
        "fast_wall_time_s": round(fast_s, 6),
        "reference_wall_time_s": round(slow_s, 6),
        "speedup": round(speedup, 3),
        "speedup_floor": floor,
        "bit_identical_to_reference": True,
        "identity_check": identity,
    }
    if scale:
        payload["scale_probe"] = run_scale_probe()
    emit_bench_json("rapid_hotpath", payload)
    assert speedup >= floor, (
        f"hot-path regression: fast path only {speedup:.2f}x faster than the "
        f"reference (floor {floor}x); fast={fast_s:.2f}s reference={slow_s:.2f}s"
    )
    return payload


def test_rapid_hotpath_gate(tmp_path):
    """Pytest entry point (quick mode keeps bench suites fast)."""
    payload = run_gate(quick=True, cache_dir=tmp_path / "cache")
    print(json.dumps(payload, indent=2, sort_keys=True))


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller cell and a 1.5x floor (CI smoke); default is the "
        f"full >= {FULL_MIN_PACKETS // 1000}k-packet cell with the "
        f"{FULL_SPEEDUP_FLOOR:g}x floor",
    )
    parser.add_argument(
        "--scale",
        action="store_true",
        help=f"additionally run the {SCALE_NODES}-node / "
        f"{SCALE_PACKETS // 1000}k-packet scale probe (fast path only)",
    )
    args = parser.parse_args(argv)
    payload = run_gate(quick=args.quick, scale=args.scale)
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
