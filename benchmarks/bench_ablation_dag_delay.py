"""Ablation: Estimate Delay's independence assumption vs the Appendix C DAG estimator.

The paper's Estimate Delay ignores cross-buffer dependencies between packet
delivery delays (Section 4.1 / Appendix C).  This ablation quantifies the
estimation gap on randomly generated buffer configurations and reports how
often the simplified estimate stays within 25% of the idealized DAG value.
"""

from __future__ import annotations

import numpy as np

from repro.core.dag_delay import dag_delay_estimates, estimate_delay_baseline

from bench_config import run_bench_callable


def _random_configuration(rng, num_nodes=4, num_packets=6):
    """Random queues of replicated packets destined to one common node."""
    queues = {node: [] for node in range(num_nodes)}
    for packet_id in range(num_packets):
        holders = rng.choice(num_nodes, size=rng.integers(1, 3), replace=False)
        for node in holders:
            queues[int(node)].append(packet_id)
    means = {node: float(rng.uniform(50.0, 300.0)) for node in range(num_nodes)}
    return {n: q for n, q in queues.items() if q}, means


def _estimation_study(num_configurations=8, seed=3):
    rng = np.random.default_rng(seed)
    ratios = []
    for _ in range(num_configurations):
        queues, means = _random_configuration(rng)
        simplified = estimate_delay_baseline(queues, means)
        idealized = dag_delay_estimates(queues, means, num_samples=600, seed=int(rng.integers(1 << 30)))
        for packet_id, value in simplified.items():
            ideal = idealized[packet_id]
            if 0 < ideal < float("inf") and value < float("inf"):
                ratios.append(value / ideal)
    return ratios


def test_estimate_delay_vs_dag_delay(benchmark):
    ratios = run_bench_callable(benchmark, _estimation_study, "ablation_dag_delay")
    ratios = np.asarray(ratios)
    within_25_percent = float(np.mean(np.abs(ratios - 1.0) <= 0.25))
    print()
    print("Ablation: Estimate Delay vs DAG delay")
    print(f"  configurations evaluated : {len(ratios)} packet estimates")
    print(f"  mean ratio (simplified / idealized): {ratios.mean():.3f}")
    print(f"  fraction within 25% of the DAG value: {within_25_percent:.2f}")
    # Front-of-queue packets agree exactly; queued packets may diverge, but
    # the simplified estimate must stay within a small constant factor on
    # these small configurations.
    assert 0.4 < ratios.mean() < 2.5
    assert within_25_percent > 0.3
