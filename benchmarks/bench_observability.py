"""Benchmark gate: observability must be free when off, deterministic when on.

The observability subsystem threads trace/metrics hooks through the
simulator's hot path.  This gate protects both halves of its contract:

1. **Null-sink overhead** — the buffer-constrained RAPID cell of
   ``bench_rapid_hotpath`` runs with no options and again with an
   explicit :class:`~repro.observability.NullSink` trace sink.  Both
   headline outputs must be byte-identical and the instrumented run at
   most 2% slower.  The variants are timed interleaved round-robin and
   each is compared against the default *of its own round* (quietest
   round wins, plus an absolute slack), so machine drift and
   noisy-neighbour bursts do not read as overhead.  The cost of
   *full* instrumentation (in-memory trace plus sampled metrics) is
   recorded alongside, but not gated — tracing does strictly more work
   by design.
2. **Audit-disabled overhead** — the same cell runs with a null
   ``decision_sink``.  A disabled decision audit must leave the hot
   path untouched: byte-identical headline output, same 2% ceiling.
   The cost of a *live* audit (in-memory decision sink) is recorded
   but not gated.
3. **Trace determinism** — a small rapid/epidemic grid runs through the
   experiment engine serially, fanned out over four worker processes,
   against a cold result cache and again against the warm cache.  All
   four runs must emit byte-identical JSONL lifecycle traces,
   byte-identical decision-audit traces and byte-identical headline
   results.

Everything lands in ``benchmarks/results/BENCH_observability.json``; the
serial run's trace is written to ``benchmarks/results/sample_trace.jsonl``
and a self-contained HTML report rendered from it to
``benchmarks/results/report.html`` (the artifacts CI uploads).

Usage::

    PYTHONPATH=src python benchmarks/bench_observability.py [--quick]
    PYTHONPATH=src python -m pytest benchmarks/bench_observability.py -q
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

sys.path.insert(0, str(Path(__file__).parent))

from repro import units
from repro.dtn.simulator import run_simulation
from repro.dtn.workload import PoissonWorkload
from repro.engine import ExperimentEngine, ObservabilityOptions, ScenarioGrid
from repro.experiments.config import ProtocolSpec, SyntheticExperimentConfig
from repro.mobility.exponential import ExponentialMobility
from repro.observability import (
    MemorySink,
    NullSink,
    delivery_funnel,
    load_bench_records,
    render_report,
    write_report,
)
from repro.routing.registry import create_factory

from bench_config import RESULTS_DIR, emit_bench_json

#: Maximum overhead the null-sink default may add over the bare hot path
#: (1.02 = two percent), plus an absolute floor so a short cell cannot
#: flap the gate on scheduler noise.
OVERHEAD_CEILING = 1.02
ABSOLUTE_SLACK_S = 0.05
#: Wall times are the best of this many runs (denoising; the 2% ceiling
#: is tight, so this gate repeats more than the 10% contact-model gate).
REPEATS = 5

#: Protocols whose traces must agree across every backend.
IDENTITY_PROTOCOLS = ("rapid", "epidemic")
#: Metric sampling interval of the determinism grid (simulated seconds).
IDENTITY_METRICS_INTERVAL = 30.0

SAMPLE_TRACE_PATH = RESULTS_DIR / "sample_trace.jsonl"
SAMPLE_REPORT_PATH = RESULTS_DIR / "report.html"


def _hotpath_inputs(quick: bool):
    """The buffer-constrained synthetic RAPID cell (see bench_rapid_hotpath)."""
    duration = 400.0 if quick else 1200.0
    mobility = ExponentialMobility(
        num_nodes=6,
        mean_inter_meeting=100.0,
        transfer_opportunity=60 * units.KB,
        seed=3,
    )
    schedule = mobility.generate(duration)
    workload = PoissonWorkload(packets_per_hour=700.0, seed=4)
    packets = workload.generate(list(range(6)), duration)
    return schedule, packets, 600 * units.KB


def _time_variants(
    schedule,
    packets,
    capacity: float,
    variants: Dict[str, Optional[Dict[str, object]]],
) -> Tuple[Dict[str, Dict[str, object]], List[Dict[str, float]]]:
    """Run every option variant REPEATS times, interleaved round-robin.

    Returns ``({name: payload}, [per-round {name: wall seconds}])``.
    The variants rotate inside each round (rather than each getting its
    own sequential best-of block) so slow machine drift — thermal
    throttling, a busy sibling on a shared core — hits every variant
    alike instead of being misread as overhead of whichever ran last;
    the per-round timings let the gate compare each variant against the
    default *of the same round* (see :func:`_paired_overhead`).

    A fresh copy of a variant's options is built per repeat because
    sinks are stateful (a NullSink is not, but the full-instrumentation
    probe passes MemorySink factory values).
    """
    payloads: Dict[str, Dict[str, object]] = {}
    rounds: List[Dict[str, float]] = []
    for _ in range(REPEATS):
        timings: Dict[str, float] = {}
        for name, options in variants.items():
            run_options = (
                {k: (v() if callable(v) else v) for k, v in options.items()}
                if options is not None
                else None
            )
            started = time.perf_counter()
            result = run_simulation(
                schedule,
                packets,
                create_factory("rapid"),
                buffer_capacity=capacity,
                seed=5,
                options=run_options,
            )
            timings[name] = time.perf_counter() - started
            payloads[name] = result.to_dict()
        rounds.append(timings)
    return payloads, rounds


def _best_wall(rounds: List[Dict[str, float]], name: str) -> float:
    return min(timings[name] for timings in rounds)


def _paired_overhead(rounds: List[Dict[str, float]], name: str) -> float:
    """The variant's overhead over the default, paired within rounds.

    Each round times every variant back to back, so the ratio *within*
    a round sees (nearly) the same machine; the minimum over rounds is
    the quietest such pairing.  A real regression inflates every
    round's ratio; drift or a noisy-neighbour burst inflates only the
    rounds it hit.
    """
    return min(
        timings[name] / timings["default"] if timings["default"] > 0 else float("inf")
        for timings in rounds
    )


def _within_budget(rounds: List[Dict[str, float]], name: str) -> bool:
    """Gate check: some round ran the variant within budget of its own
    default (ceiling plus absolute slack, both per-round paired)."""
    return any(
        timings[name] <= timings["default"] * OVERHEAD_CEILING + ABSOLUTE_SLACK_S
        for timings in rounds
    )


def _canonical(payload) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _identity_grid(quick: bool) -> ScenarioGrid:
    config = SyntheticExperimentConfig(
        num_nodes=8,
        mean_inter_meeting=70.0,
        transfer_opportunity=100 * units.KB,
        duration=(3 if quick else 6) * units.MINUTE,
        buffer_capacity=40 * units.KB,
        deadline=25.0,
        packet_interval=50.0,
        mobility="exponential",
        num_runs=1,
        seed=11,
    )
    protocols = [
        ProtocolSpec(label=name, registry_name=name) for name in IDENTITY_PROTOCOLS
    ]
    return ScenarioGrid(config=config, protocols=protocols, loads=(4.0, 8.0))


def _traced_run(
    grid: ScenarioGrid, workers: int, cache_dir: Optional[Path]
) -> Tuple[str, str, str, int]:
    """One observed grid run.

    Returns (trace bytes, decision bytes, result bytes, cache hits).
    """
    lines: List[str] = []
    decision_lines: List[str] = []
    observability = ObservabilityOptions(
        trace=True, decisions=True, metrics_interval=IDENTITY_METRICS_INTERVAL
    )
    with ExperimentEngine(workers=workers, cache_dir=cache_dir) as engine:
        results = engine.run_cells(
            grid.cells(),
            observability=observability,
            trace_writer=lines.append,
            decisions_writer=decision_lines.append,
        )
        hits = engine.stats.cache_hits
    # Headline results must also agree; metrics ride along only when
    # sampling is on, so compare with the instrumented block stripped.
    payloads = []
    for result in results:
        payload = result.to_dict()
        payload.pop("metrics", None)
        payloads.append(payload)
    return "\n".join(lines), "\n".join(decision_lines), _canonical(payloads), hits


def _sample_report(serial_trace: str) -> None:
    """Render the CI report artifact from the serial run's trace."""
    events = [json.loads(line) for line in serial_trace.splitlines()]
    html_text = render_report(
        "repro-dtn bench report",
        funnel=delivery_funnel(events),
        benches=load_bench_records(RESULTS_DIR),
        subtitle="rendered by bench_observability from the determinism grid",
    )
    write_report(SAMPLE_REPORT_PATH, html_text)


def _determinism_check(cache_dir: Path) -> Dict[str, object]:
    """Traces must not depend on backend, worker count or cache state."""
    grid = _identity_grid(quick=True)
    serial_trace, serial_dec, serial_results, _ = _traced_run(
        grid, workers=1, cache_dir=None
    )
    parallel_trace, parallel_dec, parallel_results, _ = _traced_run(
        grid, workers=4, cache_dir=None
    )
    cold_trace, cold_dec, cold_results, _ = _traced_run(
        grid, workers=1, cache_dir=cache_dir
    )
    warm_trace, warm_dec, warm_results, warm_hits = _traced_run(
        grid, workers=1, cache_dir=cache_dir
    )

    assert parallel_trace == serial_trace, "workers=4 trace differs from serial"
    assert cold_trace == serial_trace, "cold-cache trace differs from serial"
    assert warm_trace == serial_trace, "warm-cache trace differs from serial"
    assert parallel_dec == serial_dec, "workers=4 decisions differ from serial"
    assert cold_dec == serial_dec, "cold-cache decisions differ from serial"
    assert warm_dec == serial_dec, "warm-cache decisions differ from serial"
    assert serial_dec, "decision audit produced no events on a lossy grid"
    assert parallel_results == serial_results, "workers=4 results differ from serial"
    assert cold_results == serial_results, "cold-cache results differ from serial"
    assert warm_results == serial_results, "warm-cache results differ from serial"
    # Tracing bypasses cache *reads* (a served hit would skip the
    # simulation that produces the trace), so the warm run re-executes.
    assert warm_hits == 0, "traced warm-cache run served cache hits"

    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    SAMPLE_TRACE_PATH.write_text(serial_trace + "\n", encoding="utf-8")
    _sample_report(serial_trace)
    return {
        "protocols": list(IDENTITY_PROTOCOLS),
        "cells": len(grid),
        "trace_lines": serial_trace.count("\n") + 1,
        "decision_lines": serial_dec.count("\n") + 1,
        "backends_identical": True,
        "decisions_identical": True,
        "sample_trace": str(SAMPLE_TRACE_PATH),
        "sample_report": str(SAMPLE_REPORT_PATH),
    }


def run_gate(quick: bool, cache_dir: Optional[Path] = None) -> Dict[str, object]:
    """Run the full gate; return the BENCH payload (raises on regression)."""
    schedule, packets, capacity = _hotpath_inputs(quick)

    payloads, rounds = _time_variants(
        schedule,
        packets,
        capacity,
        {
            # The bare hot path everything is measured against.
            "default": None,
            # Gated: a null trace sink must be free.
            "null_sink": {"trace_sink": NullSink()},
            # Gated: a disabled decision audit must be as free as a
            # disabled trace — a null decision_sink skips recorder
            # construction entirely, so the protocols keep their
            # unhooked shape.
            "audit_off": {"decision_sink": NullSink()},
            # Recorded, not gated: a *live* audit's ranking snapshots
            # do strictly more work by design.
            "audit_on": {"decision_sink": MemorySink},
            # Recorded, not gated: full instrumentation.
            "traced": {"trace_sink": MemorySink, "metrics_interval": 30.0},
        },
    )
    default_payload = payloads["default"]
    default_s = _best_wall(rounds, "default")
    nullsink_s = _best_wall(rounds, "null_sink")
    nullaudit_s = _best_wall(rounds, "audit_off")
    audited_s = _best_wall(rounds, "audit_on")
    traced_s = _best_wall(rounds, "traced")

    assert _canonical(default_payload) == _canonical(payloads["null_sink"]), (
        "null-sink instrumented output differs from the default path"
    )
    overhead = _paired_overhead(rounds, "null_sink")

    assert _canonical(default_payload) == _canonical(payloads["audit_off"]), (
        "null decision-sink output differs from the default path"
    )
    audit_off_overhead = _paired_overhead(rounds, "audit_off")

    assert _canonical(default_payload) == _canonical(payloads["audit_on"]), (
        "enabling the decision audit changed the headline result"
    )

    traced_headline = dict(payloads["traced"])
    traced_metrics = traced_headline.pop("metrics", None)
    assert _canonical(default_payload) == _canonical(traced_headline), (
        "tracing/metrics changed the headline result"
    )
    assert traced_metrics is not None, "metrics_interval produced no metrics block"

    if cache_dir is None:
        import tempfile

        with tempfile.TemporaryDirectory(prefix="repro-observability-") as tmp:
            determinism = _determinism_check(Path(tmp) / "cache")
    else:
        determinism = _determinism_check(cache_dir)

    payload = {
        "mode": "quick" if quick else "full",
        "packets": len(packets),
        "overhead_ceiling": OVERHEAD_CEILING,
        "default_wall_time_s": round(default_s, 6),
        "null_sink_wall_time_s": round(nullsink_s, 6),
        "null_sink_overhead": round(overhead, 4),
        "audit_off_wall_time_s": round(nullaudit_s, 6),
        "audit_off_overhead": round(audit_off_overhead, 4),
        "audit_on_wall_time_s": round(audited_s, 6),
        "audit_on_overhead": round(_paired_overhead(rounds, "audit_on"), 4),
        "full_instrumentation_wall_time_s": round(traced_s, 6),
        "full_instrumentation_overhead": round(_paired_overhead(rounds, "traced"), 4),
        "metrics_samples": len(traced_metrics["times"]),
        "bit_identical_to_default": True,
        "determinism_check": determinism,
    }
    emit_bench_json("observability", payload)
    assert _within_budget(rounds, "null_sink"), (
        f"observability regression: null-sink instrumentation is "
        f"{overhead:.3f}x the default hot path in its quietest round "
        f"(ceiling {OVERHEAD_CEILING}x); "
        f"default={default_s:.3f}s null-sink={nullsink_s:.3f}s"
    )
    assert _within_budget(rounds, "audit_off"), (
        f"observability regression: disabled decision audit is "
        f"{audit_off_overhead:.3f}x the default hot path in its quietest "
        f"round (ceiling {OVERHEAD_CEILING}x); "
        f"default={default_s:.3f}s audit-off={nullaudit_s:.3f}s"
    )
    return payload


def test_observability_gate(tmp_path):
    """Pytest entry point (quick mode keeps bench suites fast)."""
    payload = run_gate(quick=True, cache_dir=tmp_path / "cache")
    print(json.dumps(payload, indent=2, sort_keys=True))


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller cells for CI smoke runs; default is the full "
        "bench_rapid_hotpath-sized cell",
    )
    args = parser.parse_args(argv)
    payload = run_gate(quick=args.quick)
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
