"""Benchmark gate: observability must be free when off, deterministic when on.

The observability subsystem threads trace/metrics hooks through the
simulator's hot path.  This gate protects both halves of its contract:

1. **Null-sink overhead** — the buffer-constrained RAPID cell of
   ``bench_rapid_hotpath`` runs with no options and again with an
   explicit :class:`~repro.observability.NullSink` trace sink.  Both
   headline outputs must be byte-identical and the instrumented run at
   most 2% slower (best-of-N wall time plus an absolute slack so a
   short cell cannot flap the gate on scheduler noise).  The cost of
   *full* instrumentation (in-memory trace plus sampled metrics) is
   recorded alongside, but not gated — tracing does strictly more work
   by design.
2. **Trace determinism** — a small rapid/epidemic grid runs through the
   experiment engine serially, fanned out over four worker processes,
   against a cold result cache and again against the warm cache.  All
   four runs must emit byte-identical JSONL traces and byte-identical
   headline results.

Everything lands in ``benchmarks/results/BENCH_observability.json``; the
serial run's trace is written to ``benchmarks/results/sample_trace.jsonl``
(the artifact CI uploads).

Usage::

    PYTHONPATH=src python benchmarks/bench_observability.py [--quick]
    PYTHONPATH=src python -m pytest benchmarks/bench_observability.py -q
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

sys.path.insert(0, str(Path(__file__).parent))

from repro import units
from repro.dtn.simulator import run_simulation
from repro.dtn.workload import PoissonWorkload
from repro.engine import ExperimentEngine, ObservabilityOptions, ScenarioGrid
from repro.experiments.config import ProtocolSpec, SyntheticExperimentConfig
from repro.mobility.exponential import ExponentialMobility
from repro.observability import MemorySink, NullSink
from repro.routing.registry import create_factory

from bench_config import RESULTS_DIR, emit_bench_json

#: Maximum overhead the null-sink default may add over the bare hot path
#: (1.02 = two percent), plus an absolute floor so a short cell cannot
#: flap the gate on scheduler noise.
OVERHEAD_CEILING = 1.02
ABSOLUTE_SLACK_S = 0.05
#: Wall times are the best of this many runs (denoising; the 2% ceiling
#: is tight, so this gate repeats more than the 10% contact-model gate).
REPEATS = 5

#: Protocols whose traces must agree across every backend.
IDENTITY_PROTOCOLS = ("rapid", "epidemic")
#: Metric sampling interval of the determinism grid (simulated seconds).
IDENTITY_METRICS_INTERVAL = 30.0

SAMPLE_TRACE_PATH = RESULTS_DIR / "sample_trace.jsonl"


def _hotpath_inputs(quick: bool):
    """The buffer-constrained synthetic RAPID cell (see bench_rapid_hotpath)."""
    duration = 400.0 if quick else 1200.0
    mobility = ExponentialMobility(
        num_nodes=6,
        mean_inter_meeting=100.0,
        transfer_opportunity=60 * units.KB,
        seed=3,
    )
    schedule = mobility.generate(duration)
    workload = PoissonWorkload(packets_per_hour=700.0, seed=4)
    packets = workload.generate(list(range(6)), duration)
    return schedule, packets, 600 * units.KB


def _time_cell(
    schedule, packets, capacity: float, options: Optional[Dict[str, object]]
) -> Tuple[Dict[str, object], float]:
    """Run the cell REPEATS times; return (payload, best wall seconds).

    A fresh copy of *options* is built per repeat because sinks are
    stateful (a NullSink is not, but the full-instrumentation probe
    reuses this helper with a MemorySink factory value).
    """
    best = float("inf")
    payload: Dict[str, object] = {}
    for _ in range(REPEATS):
        run_options = (
            {k: (v() if callable(v) else v) for k, v in options.items()}
            if options is not None
            else None
        )
        started = time.perf_counter()
        result = run_simulation(
            schedule,
            packets,
            create_factory("rapid"),
            buffer_capacity=capacity,
            seed=5,
            options=run_options,
        )
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best = elapsed
        payload = result.to_dict()
    return payload, best


def _canonical(payload) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _identity_grid(quick: bool) -> ScenarioGrid:
    config = SyntheticExperimentConfig(
        num_nodes=8,
        mean_inter_meeting=70.0,
        transfer_opportunity=100 * units.KB,
        duration=(3 if quick else 6) * units.MINUTE,
        buffer_capacity=40 * units.KB,
        deadline=25.0,
        packet_interval=50.0,
        mobility="exponential",
        num_runs=1,
        seed=11,
    )
    protocols = [
        ProtocolSpec(label=name, registry_name=name) for name in IDENTITY_PROTOCOLS
    ]
    return ScenarioGrid(config=config, protocols=protocols, loads=(4.0, 8.0))


def _traced_run(
    grid: ScenarioGrid, workers: int, cache_dir: Optional[Path]
) -> Tuple[str, str, int]:
    """One observed grid run; returns (trace bytes, result bytes, cache hits)."""
    lines: List[str] = []
    observability = ObservabilityOptions(
        trace=True, metrics_interval=IDENTITY_METRICS_INTERVAL
    )
    with ExperimentEngine(workers=workers, cache_dir=cache_dir) as engine:
        results = engine.run_cells(
            grid.cells(), observability=observability, trace_writer=lines.append
        )
        hits = engine.stats.cache_hits
    # Headline results must also agree; metrics ride along only when
    # sampling is on, so compare with the instrumented block stripped.
    payloads = []
    for result in results:
        payload = result.to_dict()
        payload.pop("metrics", None)
        payloads.append(payload)
    return "\n".join(lines), _canonical(payloads), hits


def _determinism_check(cache_dir: Path) -> Dict[str, object]:
    """Traces must not depend on backend, worker count or cache state."""
    grid = _identity_grid(quick=True)
    serial_trace, serial_results, _ = _traced_run(grid, workers=1, cache_dir=None)
    parallel_trace, parallel_results, _ = _traced_run(grid, workers=4, cache_dir=None)
    cold_trace, cold_results, _ = _traced_run(grid, workers=1, cache_dir=cache_dir)
    warm_trace, warm_results, warm_hits = _traced_run(
        grid, workers=1, cache_dir=cache_dir
    )

    assert parallel_trace == serial_trace, "workers=4 trace differs from serial"
    assert cold_trace == serial_trace, "cold-cache trace differs from serial"
    assert warm_trace == serial_trace, "warm-cache trace differs from serial"
    assert parallel_results == serial_results, "workers=4 results differ from serial"
    assert cold_results == serial_results, "cold-cache results differ from serial"
    assert warm_results == serial_results, "warm-cache results differ from serial"
    # Tracing bypasses cache *reads* (a served hit would skip the
    # simulation that produces the trace), so the warm run re-executes.
    assert warm_hits == 0, "traced warm-cache run served cache hits"

    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    SAMPLE_TRACE_PATH.write_text(serial_trace + "\n", encoding="utf-8")
    return {
        "protocols": list(IDENTITY_PROTOCOLS),
        "cells": len(grid),
        "trace_lines": serial_trace.count("\n") + 1,
        "backends_identical": True,
        "sample_trace": str(SAMPLE_TRACE_PATH),
    }


def run_gate(quick: bool, cache_dir: Optional[Path] = None) -> Dict[str, object]:
    """Run the full gate; return the BENCH payload (raises on regression)."""
    schedule, packets, capacity = _hotpath_inputs(quick)

    default_payload, default_s = _time_cell(schedule, packets, capacity, None)
    nullsink_payload, nullsink_s = _time_cell(
        schedule, packets, capacity, {"trace_sink": NullSink()}
    )

    assert _canonical(default_payload) == _canonical(nullsink_payload), (
        "null-sink instrumented output differs from the default path"
    )
    overhead = nullsink_s / default_s if default_s > 0 else float("inf")

    # Cost of full instrumentation (recorded, not gated).
    traced_payload, traced_s = _time_cell(
        schedule,
        packets,
        capacity,
        {"trace_sink": MemorySink, "metrics_interval": 30.0},
    )
    traced_headline = dict(traced_payload)
    traced_metrics = traced_headline.pop("metrics", None)
    assert _canonical(default_payload) == _canonical(traced_headline), (
        "tracing/metrics changed the headline result"
    )
    assert traced_metrics is not None, "metrics_interval produced no metrics block"

    if cache_dir is None:
        import tempfile

        with tempfile.TemporaryDirectory(prefix="repro-observability-") as tmp:
            determinism = _determinism_check(Path(tmp) / "cache")
    else:
        determinism = _determinism_check(cache_dir)

    payload = {
        "mode": "quick" if quick else "full",
        "packets": len(packets),
        "overhead_ceiling": OVERHEAD_CEILING,
        "default_wall_time_s": round(default_s, 6),
        "null_sink_wall_time_s": round(nullsink_s, 6),
        "null_sink_overhead": round(overhead, 4),
        "full_instrumentation_wall_time_s": round(traced_s, 6),
        "full_instrumentation_overhead": round(
            traced_s / default_s if default_s > 0 else float("inf"), 4
        ),
        "metrics_samples": len(traced_metrics["times"]),
        "bit_identical_to_default": True,
        "determinism_check": determinism,
    }
    emit_bench_json("observability", payload)
    assert nullsink_s <= default_s * OVERHEAD_CEILING + ABSOLUTE_SLACK_S, (
        f"observability regression: null-sink instrumentation is "
        f"{overhead:.3f}x the default hot path (ceiling {OVERHEAD_CEILING}x); "
        f"default={default_s:.3f}s null-sink={nullsink_s:.3f}s"
    )
    return payload


def test_observability_gate(tmp_path):
    """Pytest entry point (quick mode keeps bench suites fast)."""
    payload = run_gate(quick=True, cache_dir=tmp_path / "cache")
    print(json.dumps(payload, indent=2, sort_keys=True))


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller cells for CI smoke runs; default is the full "
        "bench_rapid_hotpath-sized cell",
    )
    args = parser.parse_args(argv)
    payload = run_gate(quick=args.quick)
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
