"""Benchmark: regenerate Figure 3 of the paper at reduced scale.

Per-day average delay: emulated deployment vs trace-driven simulation.
"""

from repro.experiments.deployment import run_figure3

from bench_config import bench_trace_config, run_exhibit


def test_run_figure3(benchmark):
    result = run_exhibit(
        benchmark, run_figure3, config=bench_trace_config(num_days=2), simulation_repeats=2
    )
    assert result.labels() == ["Real", "Simulation"]
    real = result.get("Real")
    sim = result.get("Simulation")
    assert len(real.y) == len(sim.y) >= 2
    # The simulator tracks the deployment closely (paper: within 1%%; the
    # noisy emulation at reduced scale stays within ~25%%).
    mean_real = sum(real.y) / len(real.y)
    mean_sim = sum(sim.y) / len(sim.y)
    assert abs(mean_real - mean_sim) / mean_real < 0.25
