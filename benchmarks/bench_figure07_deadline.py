"""Benchmark: regenerate Figure 7 of the paper at reduced scale.

Trace-driven delivery-within-deadline vs load (RAPID metric: deadline).
"""

from repro.experiments.trace_comparison import run_figure7

from bench_config import TRACE_LOADS, bench_trace_config, run_exhibit


def test_run_figure7(benchmark):
    result = run_exhibit(
        benchmark, run_figure7, loads=TRACE_LOADS, config=bench_trace_config()
    )
    assert set(result.labels()) == {"Rapid", "MaxProp", "Spray and Wait", "Random"}
    assert all(len(series.x) == len(TRACE_LOADS) for series in result.series)

    rapid = result.get("Rapid")
    random_series = result.get("Random")
    # Shape: RAPID delivers at least as many packets within the deadline.
    assert sum(rapid.y) >= sum(random_series.y) - 0.05
