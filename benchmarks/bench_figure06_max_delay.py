"""Benchmark: regenerate Figure 6 of the paper at reduced scale.

Trace-driven maximum delay vs load (RAPID metric: max delay).
"""

from repro.experiments.trace_comparison import run_figure6

from bench_config import TRACE_LOADS, bench_trace_config, run_exhibit


def test_run_figure6(benchmark):
    result = run_exhibit(
        benchmark, run_figure6, loads=TRACE_LOADS, config=bench_trace_config()
    )
    assert set(result.labels()) == {"Rapid", "MaxProp", "Spray and Wait", "Random"}
    assert all(len(series.x) == len(TRACE_LOADS) for series in result.series)

    assert all(y >= 0 for series in result.series for y in series.y)
