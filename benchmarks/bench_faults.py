"""Benchmark gate: fault injection must be free when off, deterministic when on.

The fault subsystem threads outage/contact-fault checks through the
simulator's hot path.  This gate protects both halves of its contract:

1. **Fault-free overhead** — the buffer-constrained RAPID cell of
   ``bench_rapid_hotpath`` runs with no options and again on a config
   whose :class:`~repro.faults.FaultParameters` are the (disabled)
   default.  Both headline outputs must be byte-identical and the
   fault-aware run at most 2% slower (best-of-N wall time plus an
   absolute slack so a short cell cannot flap the gate on scheduler
   noise).  A crash-faulted run is timed alongside for trend tracking,
   not gated — injecting outages does strictly more work by design.
2. **Schedule determinism** — a small rapid/epidemic grid with the
   ``crash`` faults axis runs through the experiment engine serially,
   fanned out over four worker processes, against a cold result cache
   and again against the warm cache.  All four runs must return
   byte-identical serialized results (which embed the per-run fault
   accounting).

Everything lands in ``benchmarks/results/BENCH_faults.json`` (the
artifact CI uploads).

Usage::

    PYTHONPATH=src python benchmarks/bench_faults.py [--quick]
    PYTHONPATH=src python -m pytest benchmarks/bench_faults.py -q
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple

sys.path.insert(0, str(Path(__file__).parent))

from repro import units
from repro.dtn.simulator import run_simulation
from repro.dtn.workload import PoissonWorkload
from repro.engine import ExperimentEngine, ScenarioGrid
from repro.experiments.config import ProtocolSpec, SyntheticExperimentConfig
from repro.faults import FaultParameters, build_fault_model
from repro.mobility.exponential import ExponentialMobility
from repro.routing.registry import create_factory

from bench_config import emit_bench_json

#: Maximum overhead the disabled fault path may add over the bare hot
#: path (1.02 = two percent), plus an absolute floor so a short cell
#: cannot flap the gate on scheduler noise.
OVERHEAD_CEILING = 1.02
ABSOLUTE_SLACK_S = 0.05
#: Wall times are the best of this many runs (denoising; the 2% ceiling
#: is tight).
REPEATS = 5

#: Protocols whose faulted results must agree across every backend.
IDENTITY_PROTOCOLS = ("rapid", "epidemic")
#: Fault setting of the determinism grid.
IDENTITY_FAULT_MODEL = "crash"
IDENTITY_FAULT_RATE = 0.5


def _hotpath_inputs(quick: bool):
    """The buffer-constrained synthetic RAPID cell (see bench_rapid_hotpath)."""
    duration = 400.0 if quick else 1200.0
    mobility = ExponentialMobility(
        num_nodes=6,
        mean_inter_meeting=100.0,
        transfer_opportunity=60 * units.KB,
        seed=3,
    )
    schedule = mobility.generate(duration)
    workload = PoissonWorkload(packets_per_hour=700.0, seed=4)
    packets = workload.generate(list(range(6)), duration)
    return schedule, packets, 600 * units.KB


def _time_cell(
    schedule, packets, capacity: float, options_factory
) -> Tuple[Dict[str, object], float]:
    """Run the cell REPEATS times; return (payload, best wall seconds).

    ``options_factory`` builds a fresh options dict per repeat (fault
    models are stateful: their RNG stream advances as the schedule is
    drawn)."""
    best = float("inf")
    payload: Dict[str, object] = {}
    for _ in range(REPEATS):
        run_options = options_factory() if options_factory is not None else None
        started = time.perf_counter()
        result = run_simulation(
            schedule,
            packets,
            create_factory("rapid"),
            buffer_capacity=capacity,
            seed=5,
            options=run_options,
        )
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best = elapsed
        payload = result.to_dict()
    return payload, best


def _canonical(payload) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _identity_grid(quick: bool) -> ScenarioGrid:
    config = SyntheticExperimentConfig(
        num_nodes=8,
        mean_inter_meeting=70.0,
        transfer_opportunity=100 * units.KB,
        duration=(3 if quick else 6) * units.MINUTE,
        buffer_capacity=40 * units.KB,
        deadline=25.0,
        packet_interval=50.0,
        mobility="exponential",
        num_runs=1,
        seed=11,
    ).with_faults(FaultParameters(rate=IDENTITY_FAULT_RATE))
    protocols = [
        ProtocolSpec(label=name, registry_name=name) for name in IDENTITY_PROTOCOLS
    ]
    return ScenarioGrid(
        config=config,
        protocols=protocols,
        loads=(4.0, 8.0),
        faults=(IDENTITY_FAULT_MODEL,),
    )


def _faulted_run(grid: ScenarioGrid, workers: int, cache_dir: Optional[Path]) -> str:
    """One faulted grid run; returns the canonical serialized results."""
    with ExperimentEngine(workers=workers, cache_dir=cache_dir) as engine:
        results = engine.run_cells(grid.cells())
    return _canonical([result.to_dict() for result in results])


def _determinism_check(cache_dir: Path) -> Dict[str, object]:
    """Faulted results must not depend on backend, workers or cache state."""
    grid = _identity_grid(quick=True)
    serial = _faulted_run(grid, workers=1, cache_dir=None)
    parallel = _faulted_run(grid, workers=4, cache_dir=None)
    cold = _faulted_run(grid, workers=1, cache_dir=cache_dir)
    warm = _faulted_run(grid, workers=1, cache_dir=cache_dir)

    assert parallel == serial, "workers=4 faulted results differ from serial"
    assert cold == serial, "cold-cache faulted results differ from serial"
    assert warm == serial, "warm-cache faulted results differ from serial"
    assert '"faults"' in serial, "determinism grid drew no fault at all"

    return {
        "protocols": list(IDENTITY_PROTOCOLS),
        "fault_model": IDENTITY_FAULT_MODEL,
        "fault_rate": IDENTITY_FAULT_RATE,
        "cells": len(grid),
        "backends_identical": True,
    }


def run_gate(quick: bool, cache_dir: Optional[Path] = None) -> Dict[str, object]:
    """Run the full gate; return the BENCH payload (raises on regression)."""
    schedule, packets, capacity = _hotpath_inputs(quick)

    default_payload, default_s = _time_cell(schedule, packets, capacity, None)
    # The engine's fault-free path passes no fault options at all; the
    # probe exercises the simulator's option handling with injection off
    # by building a model that draws no fault (rate 0), which must leave
    # every RNG stream — and therefore the payload — untouched.
    quiet_params = FaultParameters(model=IDENTITY_FAULT_MODEL, rate=0.0)
    faultfree_payload, faultfree_s = _time_cell(
        schedule,
        packets,
        capacity,
        lambda: {"fault_model": build_fault_model(quiet_params, seed=99)},
    )

    assert _canonical(faultfree_payload) == _canonical(default_payload), (
        "fault-free path output differs from the default path"
    )
    overhead = faultfree_s / default_s if default_s > 0 else float("inf")

    # Cost of real injection (recorded, not gated).  The rate/seed pair
    # is chosen so the model certainly draws outages on this small cell.
    crash_params = FaultParameters(model=IDENTITY_FAULT_MODEL, rate=0.8)
    crashed_payload, crashed_s = _time_cell(
        schedule,
        packets,
        capacity,
        lambda: {"fault_model": build_fault_model(crash_params, seed=7)},
    )
    assert "faults" in crashed_payload, "crash run recorded no fault accounting"

    if cache_dir is None:
        import tempfile

        with tempfile.TemporaryDirectory(prefix="repro-faults-") as tmp:
            determinism = _determinism_check(Path(tmp) / "cache")
    else:
        determinism = _determinism_check(cache_dir)

    payload = {
        "mode": "quick" if quick else "full",
        "packets": len(packets),
        "overhead_ceiling": OVERHEAD_CEILING,
        "default_wall_time_s": round(default_s, 6),
        "fault_free_wall_time_s": round(faultfree_s, 6),
        "fault_free_overhead": round(overhead, 4),
        "crash_wall_time_s": round(crashed_s, 6),
        "crash_overhead": round(
            crashed_s / default_s if default_s > 0 else float("inf"), 4
        ),
        "crash_accounting": crashed_payload["faults"],
        "bit_identical_to_default": True,
        "determinism_check": determinism,
    }
    emit_bench_json("faults", payload)
    assert faultfree_s <= default_s * OVERHEAD_CEILING + ABSOLUTE_SLACK_S, (
        f"fault-injection regression: the disabled fault path is "
        f"{overhead:.3f}x the default hot path (ceiling {OVERHEAD_CEILING}x); "
        f"default={default_s:.3f}s fault-free={faultfree_s:.3f}s"
    )
    return payload


def test_faults_gate(tmp_path):
    """Pytest entry point (quick mode keeps bench suites fast)."""
    payload = run_gate(quick=True, cache_dir=tmp_path / "cache")
    print(json.dumps(payload, indent=2, sort_keys=True))


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller cells for CI smoke runs; default is the full "
        "bench_rapid_hotpath-sized cell",
    )
    args = parser.parse_args(argv)
    payload = run_gate(quick=args.quick)
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
