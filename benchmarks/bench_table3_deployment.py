"""Benchmark: regenerate Table 3 of the paper at reduced scale.

Average daily statistics of the (emulated) RAPID deployment.
"""

from repro.experiments.deployment import run_table3

from bench_config import bench_trace_config, run_exhibit


def test_run_table3(benchmark):
    table = run_exhibit(
        benchmark, run_table3, config=bench_trace_config(num_days=2)
    )
    assert 0.0 <= table.get("percentage_delivered_per_day") <= 100.0
    assert table.get("avg_meetings_per_day") > 0
    # Metadata overhead should be a small fraction of bandwidth, as in
    # the deployment (paper: 0.002 of bandwidth, 0.017 of data).
    assert table.get("metadata_size_over_bandwidth") < 0.05
